//! Access-throughput microbench for the per-access hot path.
//!
//! Unlike the criterion-style benches, this harness measures *wall-clock
//! accesses per second* through `SimRunner::run_quantum` for three access
//! mixes and emits the numbers to `BENCH_hotpath.json` at the repo root,
//! so the hot-path perf trajectory is tracked from PR 3 onward:
//!
//! - `hit_heavy`  — small preallocated working set, TLB-resident, read
//!   mostly: the steady-state fast path (lookup + heat update).
//! - `fault_heavy` — demand paging over a uniform footprint with a 50/50
//!   read/write mix: walks, major faults and dirty walks dominate.
//! - `thp_mix`   — THP-backed footprint: every access takes the
//!   huge-page `touch` path, so the radix walk cache is on the line.
//!
//! Invocation modes:
//! - `cargo test` (no args): one tiny smoke repetition, no files written.
//! - `cargo bench --bench hotpath` : full run, writes `BENCH_hotpath.json`.
//! - `... -- --quick`: CI-scale run, still writes `BENCH_hotpath.json`.
//! - `... -- --save-baseline`: additionally records the run as the
//!   pre-optimization baseline in `target/experiments/hotpath_baseline.json`;
//!   later runs report speedup against it (override the baseline path
//!   with `HOTPATH_BASELINE`).

use std::time::Instant;
use vulcan::prelude::*;
use vulcan_json::{Map, Value};

/// One benchmark scenario: a workload mix plus quanta counts.
struct Mix {
    name: &'static str,
    spec: WorkloadSpec,
    machine: MachineSpec,
    accesses_per_op: u64,
    /// Quanta run before timing starts (0 = measure from cold start, so
    /// demand faults land inside the timed window).
    warm_quanta: u64,
    measure_quanta: u64,
}

fn micro_spec(name: &str, cfg: MicroConfig, threads: usize) -> WorkloadSpec {
    microbench(name, cfg, threads)
}

fn mixes(quick: bool) -> Vec<Mix> {
    let (warm, measure) = if quick { (2, 4) } else { (4, 24) };
    let fault_measure = if quick { 2 } else { 4 };
    vec![
        Mix {
            name: "hit_heavy",
            spec: micro_spec(
                "hit",
                MicroConfig {
                    rss_pages: 8_192,
                    wss_pages: 1_024,
                    skew: 0.9,
                    read_ratio: 0.95,
                    accesses_per_op: 8,
                    wss_drift: 0,
                    fixed_op: Nanos::ZERO,
                },
                4,
            )
            .preallocated(TierKind::Fast),
            machine: MachineSpec::small(16_384, 16_384, 4),
            accesses_per_op: 8,
            warm_quanta: warm,
            measure_quanta: measure,
        },
        Mix {
            name: "fault_heavy",
            spec: micro_spec(
                "fault",
                MicroConfig {
                    rss_pages: 65_536,
                    wss_pages: 65_536,
                    skew: 0.0,
                    read_ratio: 0.5,
                    accesses_per_op: 4,
                    wss_drift: 0,
                    fixed_op: Nanos::ZERO,
                },
                4,
            ),
            machine: MachineSpec::small(49_152, 32_768, 4),
            accesses_per_op: 4,
            warm_quanta: 0,
            measure_quanta: fault_measure,
        },
        Mix {
            name: "thp_mix",
            spec: micro_spec(
                "thp",
                MicroConfig {
                    rss_pages: 65_536,
                    wss_pages: 32_768,
                    skew: 0.6,
                    read_ratio: 0.7,
                    accesses_per_op: 8,
                    wss_drift: 0,
                    fixed_op: Nanos::ZERO,
                },
                4,
            )
            .with_thp(),
            machine: MachineSpec::small(49_152, 32_768, 4),
            accesses_per_op: 8,
            warm_quanta: warm.min(1),
            measure_quanta: measure,
        },
    ]
}

/// Run one mix once: build a fresh runner, warm it, then time
/// `measure_quanta` quanta. Returns (accesses, wall_nanos).
fn run_once(mix: &Mix) -> (u64, u128) {
    let mut runner = SimRunner::builder()
        .machine(mix.machine.clone())
        .workloads(vec![mix.spec.clone()])
        .policy(Box::new(StaticPlacement))
        .config(SimConfig {
            n_quanta: 0,
            record_series: false,
            seed: 42,
            ..Default::default()
        })
        .build();
    for _ in 0..mix.warm_quanta {
        runner.run_quantum();
    }
    let ops_before = runner.state.workloads[0].stats.ops_total;
    let t = Instant::now();
    for _ in 0..mix.measure_quanta {
        runner.run_quantum();
    }
    let wall = t.elapsed().as_nanos();
    let ops_after = runner.state.workloads[0].stats.ops_total;
    ((ops_after - ops_before) * mix.accesses_per_op, wall)
}

/// Best (highest accesses/sec) of `reps` repetitions of a mix.
fn run_mix(mix: &Mix, reps: u32) -> (u64, u128, f64) {
    let mut best: Option<(u64, u128, f64)> = None;
    for _ in 0..reps {
        let (accesses, wall) = run_once(mix);
        let mps = accesses as f64 / (wall.max(1) as f64 / 1e9) / 1e6;
        if best.map(|(_, _, b)| mps > b).unwrap_or(true) {
            best = Some((accesses, wall, mps));
        }
    }
    best.expect("at least one repetition")
}

/// The sharded-sweep scenario: four core-disjoint hit-heavy tenants on a
/// 16-core machine, everything preallocated in fast so the plenty guard
/// holds and every quantum takes the sharded path. Measures the wall
/// clock of the same simulation at `shards = 1` versus `shards = n` —
/// results are byte-identical, only the sweep parallelism differs.
fn shard_cell(shards: usize) -> SimRunner {
    let cfg = MicroConfig {
        rss_pages: 8_192,
        wss_pages: 1_024,
        skew: 0.9,
        read_ratio: 0.95,
        accesses_per_op: 8,
        wss_drift: 0,
        fixed_op: Nanos::ZERO,
    };
    let tenants: Vec<WorkloadSpec> = (0..4)
        .map(|i| micro_spec(&format!("hit{i}"), cfg.clone(), 4).preallocated(TierKind::Fast))
        .collect();
    SimRunner::builder()
        .machine(MachineSpec::small(36_864, 16_384, 16))
        .workloads(tenants)
        .policy(Box::new(StaticPlacement))
        .config(SimConfig {
            n_quanta: 0,
            record_series: false,
            seed: 42,
            shards,
            ..Default::default()
        })
        .build()
}

/// Time `measure` quanta of the shard cell at a given shard count.
/// Returns (wall_nanos, total_ops, sharded_quanta).
fn run_shard_cell(shards: usize, warm: u64, measure: u64) -> (u128, u64, u64) {
    let mut runner = shard_cell(shards);
    for _ in 0..warm {
        runner.run_quantum();
    }
    let ops_before: u64 = runner
        .state
        .workloads
        .iter()
        .map(|w| w.stats.ops_total)
        .sum();
    let t = Instant::now();
    for _ in 0..measure {
        runner.run_quantum();
    }
    let wall = t.elapsed().as_nanos();
    let ops_after: u64 = runner
        .state
        .workloads
        .iter()
        .map(|w| w.stats.ops_total)
        .sum();
    (wall, ops_after - ops_before, runner.sharded_quanta())
}

/// Best-of-`reps` wall clock for the shard cell at `shards`.
fn best_shard_wall(shards: usize, warm: u64, measure: u64, reps: u32) -> (u128, u64, u64) {
    let mut best: Option<(u128, u64, u64)> = None;
    for _ in 0..reps {
        let run = run_shard_cell(shards, warm, measure);
        if best.map(|(w, _, _)| run.0 < w).unwrap_or(true) {
            best = Some(run);
        }
    }
    best.expect("at least one repetition")
}

/// Time one mix with the batched plane sweep forced on or off.
/// Returns (wall_nanos, ops) — ops must match across the two settings.
fn run_plane_cell(mix: &Mix, batched: bool) -> (u128, u64) {
    let mut runner = SimRunner::builder()
        .machine(mix.machine.clone())
        .workloads(vec![mix.spec.clone()])
        .policy(Box::new(StaticPlacement))
        .config(SimConfig {
            n_quanta: 0,
            record_series: false,
            seed: 42,
            batched_planes: batched,
            ..Default::default()
        })
        .build();
    for _ in 0..mix.warm_quanta {
        runner.run_quantum();
    }
    let ops_before = runner.state.workloads[0].stats.ops_total;
    let t = Instant::now();
    for _ in 0..mix.measure_quanta {
        runner.run_quantum();
    }
    let wall = t.elapsed().as_nanos();
    (wall, runner.state.workloads[0].stats.ops_total - ops_before)
}

/// Best-of-`reps` wall clock for one mix at a batched-planes setting.
fn best_plane_wall(mix: &Mix, batched: bool, reps: u32) -> (u128, u64) {
    let mut best: Option<(u128, u64)> = None;
    for _ in 0..reps {
        let run = run_plane_cell(mix, batched);
        if best.map(|(w, _)| run.0 < w).unwrap_or(true) {
            best = Some(run);
        }
    }
    best.expect("at least one repetition")
}

fn baseline_path() -> std::path::PathBuf {
    match std::env::var_os("HOTPATH_BASELINE") {
        Some(p) => std::path::PathBuf::from(p),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/experiments/hotpath_baseline.json"),
    }
}

/// Parse `{"mixes": [{"name": ..., "maccesses_per_sec": ...}]}` out of a
/// previously saved baseline file.
fn load_baseline() -> Option<Map> {
    let text = std::fs::read_to_string(baseline_path()).ok()?;
    match vulcan_json::parse(&text).ok()? {
        Value::Object(m) => Some(m),
        _ => None,
    }
}

fn baseline_rate(baseline: &Map, mix: &str) -> Option<f64> {
    let mixes = match baseline.get("mixes")? {
        Value::Array(a) => a,
        _ => return None,
    };
    for entry in mixes {
        if let Value::Object(m) = entry {
            if m.get("name").and_then(Value::as_str) == Some(mix) {
                return m.get("maccesses_per_sec").and_then(Value::as_f64);
            }
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench_mode = args.iter().any(|a| a == "--bench");
    let quick = args.iter().any(|a| a == "--quick") || std::env::var_os("HOTPATH_QUICK").is_some();
    let save_baseline = args.iter().any(|a| a == "--save-baseline");
    // `--only <mix>` restricts the run to one mix (profiling aid); such
    // runs never overwrite the tracked artifact.
    let only = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1).cloned());
    // `--shards <n>` overrides the high side of the shard-speedup
    // comparison (default 4; the low side is always 1).
    let shard_hi = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<usize>().expect("--shards needs an integer"))
        .unwrap_or(4);
    assert!(shard_hi >= 1, "--shards needs an integer >= 1");
    // Plain `cargo test` runs harness=false bench binaries with no args:
    // smoke-test only, write nothing.
    let smoke = !bench_mode && !quick && !save_baseline;

    let (reps, label) = if smoke {
        (1, "smoke")
    } else if quick {
        (2, "quick")
    } else {
        (5, "full")
    };
    let baseline = if save_baseline { None } else { load_baseline() };

    let mut rows: Vec<Value> = Vec::new();
    for mix in mixes(quick || smoke)
        .iter()
        .filter(|m| only.as_deref().is_none_or(|o| o == m.name))
    {
        let (accesses, wall, mps) = if smoke {
            let (a, w) = run_once(mix);
            (a, w, a as f64 / (w.max(1) as f64 / 1e9) / 1e6)
        } else {
            run_mix(mix, reps)
        };
        let mut row = Map::new()
            .with("name", mix.name)
            .with("accesses", accesses)
            .with("wall_ns", wall as u64)
            .with("maccesses_per_sec", mps);
        let mut line = format!(
            "hotpath/{}: {:.2} M accesses/s ({} accesses)",
            mix.name, mps, accesses
        );
        if let Some(base) = baseline.as_ref().and_then(|b| baseline_rate(b, mix.name)) {
            let speedup = mps / base;
            row = row
                .with("baseline_maccesses_per_sec", base)
                .with("speedup", speedup);
            line.push_str(&format!("  [{speedup:.2}x vs baseline {base:.2}]"));
        }
        println!("{line}");
        rows.push(Value::Object(row));
    }

    // Shard-speedup comparison: same cell, shards = 1 vs shards = hi.
    // Skipped under `--only` (it is not one of the access mixes).
    if only.is_none() {
        let (warm, measure) = if smoke {
            (0, 1)
        } else if quick {
            (2, 6)
        } else {
            (2, 16)
        };
        // The attainable ceiling is min(shards, host CPUs): on a 1-CPU
        // host the two timings measure the same serial work plus merge
        // overhead, so the ratio is pure noise — mark the row skipped
        // rather than track a meaningless number.
        let host_cpus = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        if host_cpus == 1 {
            println!("hotpath/shard_speedup: skipped (single-CPU host; ratio would be noise)");
            rows.push(Value::Object(
                Map::new()
                    .with("name", "shard_speedup")
                    .with("shards", shard_hi as u64)
                    .with("host_cpus", host_cpus as u64)
                    .with("skipped_single_cpu", true),
            ));
        } else {
            let (seq_wall, seq_ops, _) = best_shard_wall(1, warm, measure, reps);
            let (par_wall, par_ops, par_quanta) = best_shard_wall(shard_hi, warm, measure, reps);
            assert_eq!(
                seq_ops, par_ops,
                "shard cell must do identical work at every shard count"
            );
            let speedup = seq_wall as f64 / par_wall.max(1) as f64;
            println!(
                "hotpath/shard_speedup: {speedup:.2}x at {shard_hi} shards on {host_cpus} cpu(s) \
                 ({:.2} ms -> {:.2} ms over {measure} quanta, {par_quanta} sharded)",
                seq_wall as f64 / 1e6,
                par_wall as f64 / 1e6,
            );
            rows.push(Value::Object(
                Map::new()
                    .with("name", "shard_speedup")
                    .with("shards", shard_hi as u64)
                    .with("host_cpus", host_cpus as u64)
                    .with("sequential_wall_ns", seq_wall as u64)
                    .with("sharded_wall_ns", par_wall as u64)
                    .with("sharded_quanta", par_quanta)
                    .with("ops", seq_ops)
                    .with("shard_speedup", speedup),
            ));
        }

        // Batched-plane comparison: the hit-heavy cell through the scalar
        // per-access loop versus the struct-of-arrays plane sweep
        // (ISSUE 8). Identical simulated work, host wall clock only.
        let mix_set = mixes(quick || smoke);
        let hit = &mix_set[0];
        debug_assert_eq!(hit.name, "hit_heavy");
        let (scalar_wall, scalar_ops) = best_plane_wall(hit, false, reps);
        let (plane_wall, plane_ops) = best_plane_wall(hit, true, reps);
        assert_eq!(
            scalar_ops, plane_ops,
            "plane sweep must do identical simulated work"
        );
        let speedup = scalar_wall as f64 / plane_wall.max(1) as f64;
        println!(
            "hotpath/batched_speedup: {speedup:.2}x over the scalar loop \
             ({:.2} ms -> {:.2} ms, {scalar_ops} ops)",
            scalar_wall as f64 / 1e6,
            plane_wall as f64 / 1e6,
        );
        rows.push(Value::Object(
            Map::new()
                .with("name", "batched_speedup")
                .with("scalar_wall_ns", scalar_wall as u64)
                .with("batched_wall_ns", plane_wall as u64)
                .with("ops", scalar_ops)
                .with("batched_speedup", speedup),
        ));
    }

    let report = Map::new()
        .with("bench", "hotpath")
        .with("mode", label)
        .with("mixes", Value::Array(rows));

    if smoke || only.is_some() {
        println!("hotpath: no artifacts written; run with --bench or --quick (and no --only) for a tracked run");
        return;
    }
    if save_baseline {
        let path = baseline_path();
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(
            &path,
            format!("{}\n", Value::Object(report.clone()).to_json_pretty()),
        )
        .expect("write baseline");
        println!("[wrote {}]", path.display());
        return;
    }
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_hotpath.json");
    std::fs::write(
        &out,
        format!("{}\n", Value::Object(report).to_json_pretty()),
    )
    .expect("write BENCH_hotpath.json");
    println!("[wrote {}]", out.display());
}
