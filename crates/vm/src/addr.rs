//! Virtual addresses and page numbers.
//!
//! The simulator works at page granularity: workloads emit virtual page
//! numbers (VPNs). A VPN decomposes into four 9-bit radix indices exactly
//! like an x86-64 4-level page table (PGD → PUD → PMD → PTE).

/// A virtual page number (address >> 12).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vpn(pub u64);

/// Bits of radix index per page-table level.
pub const LEVEL_BITS: u32 = 9;

/// Entries per page-table node (512 on x86-64).
pub const FANOUT: usize = 1 << LEVEL_BITS;

/// Number of levels in the radix tree (PGD, PUD, PMD, PT).
pub const LEVELS: usize = 4;

impl Vpn {
    /// Radix index at `level`, where level 3 = top (PGD) and level 0 =
    /// leaf (PT).
    pub fn index(self, level: usize) -> usize {
        debug_assert!(level < LEVELS);
        ((self.0 >> (LEVEL_BITS as usize * level)) & (FANOUT as u64 - 1)) as usize
    }

    /// The VPN of the 2 MiB-aligned huge page containing this page.
    pub fn huge_base(self) -> Vpn {
        Vpn(self.0 & !(vulcan_sim::HUGE_PAGE_PAGES as u64 - 1))
    }

    /// Offset of this base page within its huge page.
    pub fn huge_offset(self) -> usize {
        (self.0 & (vulcan_sim::HUGE_PAGE_PAGES as u64 - 1)) as usize
    }

    /// The byte address of the start of this page.
    pub fn byte_addr(self) -> u64 {
        self.0 << 12
    }
}

impl From<u64> for Vpn {
    fn from(v: u64) -> Self {
        Vpn(v)
    }
}

/// A contiguous virtual page range `[start, start + len)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VpnRange {
    /// First page of the range.
    pub start: Vpn,
    /// Number of pages.
    pub len: u64,
}

impl VpnRange {
    /// Construct a range of `len` pages starting at `start`.
    pub fn new(start: Vpn, len: u64) -> Self {
        VpnRange { start, len }
    }

    /// Iterate every VPN in the range.
    pub fn iter(self) -> impl Iterator<Item = Vpn> {
        (self.start.0..self.start.0 + self.len).map(Vpn)
    }

    /// Whether `vpn` falls in the range.
    pub fn contains(self, vpn: Vpn) -> bool {
        vpn.0 >= self.start.0 && vpn.0 < self.start.0 + self.len
    }

    /// The page at `offset` within the range.
    pub fn at(self, offset: u64) -> Vpn {
        debug_assert!(offset < self.len);
        Vpn(self.start.0 + offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_indices() {
        // vpn = 1·512³ + 2·512² + 3·512 + 4
        let vpn = Vpn((1 << 27) + (2 << 18) + (3 << 9) + 4);
        assert_eq!(vpn.index(3), 1);
        assert_eq!(vpn.index(2), 2);
        assert_eq!(vpn.index(1), 3);
        assert_eq!(vpn.index(0), 4);
    }

    #[test]
    fn index_masks_to_nine_bits() {
        let vpn = Vpn(u64::MAX >> 16);
        for level in 0..LEVELS {
            assert!(vpn.index(level) < FANOUT);
        }
    }

    #[test]
    fn huge_page_decomposition() {
        let vpn = Vpn(512 * 3 + 17);
        assert_eq!(vpn.huge_base(), Vpn(512 * 3));
        assert_eq!(vpn.huge_offset(), 17);
        assert_eq!(vpn.huge_base().huge_offset(), 0);
    }

    #[test]
    fn byte_addr() {
        assert_eq!(Vpn(2).byte_addr(), 8192);
    }

    #[test]
    fn range_iteration_and_membership() {
        let r = VpnRange::new(Vpn(10), 5);
        let all: Vec<_> = r.iter().collect();
        assert_eq!(all.len(), 5);
        assert_eq!(all[0], Vpn(10));
        assert_eq!(all[4], Vpn(14));
        assert!(r.contains(Vpn(10)));
        assert!(r.contains(Vpn(14)));
        assert!(!r.contains(Vpn(15)));
        assert!(!r.contains(Vpn(9)));
        assert_eq!(r.at(3), Vpn(13));
    }
}
