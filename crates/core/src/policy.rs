//! The Vulcan tiering policy: the per-workload migration manager plus
//! the global daemon loop (§3.2–§3.5 combined).
//!
//! Each quantum the daemon:
//! 1. drives every workload's dedicated async migration engine (§3.2's
//!    per-application migration threads, with Vulcan's optimized
//!    preparation and ownership-targeted shootdowns);
//! 2. updates the black-box LC/BE classifier from utilization patterns;
//! 3. recomputes `GPT`/`FTHR`/demand (equations 1–3) and runs CBFRP
//!    (Algorithm 1) to repartition fast memory;
//! 4. enforces the partition: over-quota workloads demote their coldest
//!    fast pages (shadow remaps make clean demotions cheap), under-quota
//!    workloads promote hot slow pages through the four biased priority
//!    queues (Table 1) — async copies for read-intensive pages, sync for
//!    write-intensive ones;
//! 5. when a workload's partition is full but a queued candidate is much
//!    hotter than its coldest fast page, swaps them (intra-workload
//!    hot/cold exchange).

use crate::cbfrp::{Cbfrp, ServiceClass};
use crate::classify::Classifier;
use crate::qos;
use crate::queues::{classify, PageClass, PromotionQueues};
use vulcan_migrate::{MechanismConfig, SyncOutcome};
use vulcan_runtime::{SystemState, TieringPolicy};
use vulcan_sim::{FaultSite, TierKind};
use vulcan_telemetry::EventKind;
use vulcan_vm::Vpn;

/// Vulcan policy configuration.
#[derive(Clone, Debug)]
pub struct VulcanConfig {
    /// CBFRP transfer unit in pages.
    pub unit_pages: u64,
    /// Max promotions per workload per quantum.
    pub promotion_budget: usize,
    /// Pages of tolerated overage before demotion kicks in.
    pub demotion_slack: u64,
    /// Minimum heat for a promotion candidate.
    pub heat_threshold: f64,
    /// A queued candidate must be this many times hotter than the
    /// workload's coldest fast page to justify a swap.
    pub swap_margin: f64,
    /// Max hot/cold swaps per workload per quantum.
    pub swap_budget: usize,
    /// Fraction of the over-quota excess demoted per quantum (gradual
    /// enforcement avoids bang-bang oscillation of equation 3).
    pub demotion_rate: f64,
    /// Use the biased four-queue policy of Table 1. When disabled
    /// (ablation), candidates drain in pure heat order and every page
    /// migrates asynchronously, ignoring write intensity and ownership.
    pub biased_queues: bool,
    /// Use CBFRP partitioning. When disabled (ablation), every started
    /// workload gets a uniform GFMC quota.
    pub cbfrp: bool,
    /// Colloid-style contention guard (§3.6's proposed integration):
    /// suspend promotions while the *loaded* fast-tier latency offers no
    /// advantage over the slow tier — migrating into a bandwidth-saturated
    /// tier only adds traffic where it hurts most.
    pub colloid_guard: bool,
    /// Loaded-latency advantage (fast vs slow) below which the guard
    /// engages: pause when `fast_loaded >= slow_loaded * margin`.
    pub colloid_margin: f64,
    /// The migration mechanism (per-workload prep + targeted shootdowns
    /// + shadowing by default).
    pub mechanism: MechanismConfig,
}

impl Default for VulcanConfig {
    fn default() -> Self {
        VulcanConfig {
            unit_pages: 64,
            promotion_budget: 4_096,
            demotion_slack: 16,
            heat_threshold: 0.1,
            swap_margin: 1.3,
            swap_budget: 512,
            demotion_rate: 0.5,
            biased_queues: true,
            cbfrp: true,
            colloid_guard: true,
            colloid_margin: 0.95,
            mechanism: MechanismConfig::vulcan(),
        }
    }
}

/// The Vulcan tiering policy (the paper's contribution).
#[derive(Debug)]
pub struct VulcanPolicy {
    cfg: VulcanConfig,
    cbfrp: Option<Cbfrp>,
    classifier: Option<Classifier>,
    queues: Vec<PromotionQueues>,
    /// Quanta in which the Colloid guard suspended promotion.
    guard_engaged: u64,
    /// Last published classifier verdicts (reclassification events).
    last_classes: Vec<ServiceClass>,
    /// Trust in the nominal fast-tier capacity, in (0, 1]. Sustained
    /// fast-allocation faults (ISSUE 5) decay it ×0.9 per faulty quantum
    /// (floor 0.5); clean quanta recover it by +0.02. While below 1 the
    /// GFMC entitlement is scaled down, so CBFRP hands out quotas the
    /// degraded allocator can actually honor. Exactly 1.0 in fault-free
    /// runs, where it never perturbs the partition.
    capacity_confidence: f64,
    /// Fast-tier alloc-fault injections seen as of the last quantum.
    seen_alloc_faults: u64,
}

impl Default for VulcanPolicy {
    fn default() -> Self {
        VulcanPolicy {
            cfg: VulcanConfig::default(),
            cbfrp: None,
            classifier: None,
            queues: Vec::new(),
            guard_engaged: 0,
            last_classes: Vec::new(),
            capacity_confidence: 1.0,
            seen_alloc_faults: 0,
        }
    }
}

impl VulcanPolicy {
    /// Vulcan with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Vulcan with a custom configuration (ablations flip fields here).
    pub fn with_config(cfg: VulcanConfig) -> Self {
        VulcanPolicy {
            cfg,
            ..Default::default()
        }
    }

    /// The classifier's current verdicts (None before the first quantum).
    pub fn classes(&self) -> Option<&[ServiceClass]> {
        self.classifier.as_ref().map(|c| c.classes())
    }

    /// The CBFRP credit ledger (None before the first quantum).
    pub fn credits(&self) -> Option<&[i64]> {
        self.cbfrp.as_ref().map(|c| c.credits())
    }

    /// Quanta in which the Colloid contention guard paused promotion.
    pub fn guard_engagements(&self) -> u64 {
        self.guard_engaged
    }

    /// Current trust in the nominal fast-tier capacity (1.0 fault-free).
    pub fn capacity_confidence(&self) -> f64 {
        self.capacity_confidence
    }

    /// Decay or recover [`Self::capacity_confidence`] from this
    /// quantum's fast-allocation fault activity, and return the GFMC
    /// entitlement scaled by it. A fault-free run keeps confidence at
    /// exactly 1.0 and returns `gfmc` unchanged (byte-identity).
    fn degrade_gfmc(&mut self, state: &SystemState, gfmc: u64) -> u64 {
        let seen = state.machine.faults.stats().injected[FaultSite::AllocFast.index()];
        let faulted = seen > self.seen_alloc_faults;
        self.seen_alloc_faults = seen;
        if faulted {
            self.capacity_confidence = (self.capacity_confidence * 0.9).max(0.5);
        } else if self.capacity_confidence < 1.0 {
            self.capacity_confidence = (self.capacity_confidence + 0.02).min(1.0);
        }
        if self.capacity_confidence < 1.0 {
            (gfmc as f64 * self.capacity_confidence).floor() as u64
        } else {
            gfmc
        }
    }

    /// Requeue pages whose synchronous migration failed transiently
    /// (destination full, injected copy fault) with an MLFQ age bump —
    /// the degradation contract's "requeue into the MLFQ" arm.
    fn requeue_transient_failures(&mut self, state: &SystemState, w: usize, out: &SyncOutcome) {
        if out.failed.is_empty() {
            return;
        }
        let ws = &state.workloads[w];
        let entries: Vec<(Vpn, PageClass, f64)> = out
            .transient_failures()
            .filter_map(|v| {
                ws.process.space.owner(v).map(|o| {
                    let s = ws.heat().get(v);
                    (v, classify(o, &s), s.heat)
                })
            })
            .collect();
        self.queues[w].note_failed(entries);
    }

    /// Whether the fast tier's *loaded* latency still beats the slow
    /// tier's by the configured margin.
    fn fast_tier_worth_it(&self, state: &SystemState) -> bool {
        let fast = state
            .machine
            .access_latency(vulcan_sim::TierKind::Fast)
            .as_f64();
        let slow = state
            .machine
            .access_latency(vulcan_sim::TierKind::Slow)
            .as_f64();
        fast < slow * self.cfg.colloid_margin
    }

    fn ensure_init(&mut self, n: usize) {
        if self.cbfrp.is_none() {
            self.cbfrp = Some(Cbfrp::new(n, self.cfg.unit_pages));
            self.classifier = Some(Classifier::new(n));
            self.queues = (0..n).map(|_| PromotionQueues::new()).collect();
            // Everyone starts as BE (the classifier's safe default).
            self.last_classes = vec![ServiceClass::BestEffort; n];
            return;
        }
        // Workloads admitted mid-run (churn): extend every per-workload
        // structure in place. Existing ledgers, verdicts and queues are
        // untouched — a late tenant joins with zero credits, the BE
        // default and empty promotion queues, exactly as at a fresh init.
        if n > self.queues.len() {
            if let Some(cbfrp) = &mut self.cbfrp {
                cbfrp.grow_to(n);
            }
            if let Some(classifier) = &mut self.classifier {
                classifier.grow_to(n);
            }
            self.queues.resize_with(n, PromotionQueues::new);
            self.last_classes.resize(n, ServiceClass::BestEffort);
        }
    }

    /// Enforce workload `w`'s partition: demote overage, promote into
    /// headroom through the biased queues, swap when full but beatable.
    fn enforce(&mut self, state: &mut SystemState, w: usize, alloc: u64) {
        let mech = self.cfg.mechanism;
        let fast_used = state.workloads[w].stats.fast_used;

        // --- Demotion: over quota AND under capacity pressure ---------
        // Tiering is non-exclusive: holding pages beyond the partition
        // is harmless while fast memory is plentiful (work conservation);
        // the quota bites when capacity is actually contended.
        let pressured = state.fast_free() < state.fast_capacity() / 50;
        if pressured && fast_used > alloc + self.cfg.demotion_slack {
            let excess = (fast_used - alloc) as usize;
            // Rate-limited: release gradually so the FTHR feedback loop
            // settles instead of thrashing.
            let step = ((excess as f64 * self.cfg.demotion_rate).ceil() as usize)
                .max(self.cfg.unit_pages as usize)
                .min(excess);
            let victims = coldest_fast_pages(state, w, step);
            if !victims.is_empty() {
                state.migrate_background(w, &victims, TierKind::Slow, &mech);
            }
        }

        // --- Build this quantum's promotion queues -------------------
        let candidates: Vec<(Vpn, crate::queues::PageClass, f64)> = {
            let ws = &state.workloads[w];
            ws.heat()
                .iter()
                .filter(|(vpn, s)| {
                    s.heat >= self.cfg.heat_threshold
                        && ws.process.space.pte(*vpn).tier() == Some(TierKind::Slow)
                        && !ws.async_migrator.is_inflight(*vpn)
                })
                .filter_map(|(vpn, s)| {
                    ws.process
                        .space
                        .owner(vpn)
                        .map(|o| (vpn, classify(o, &s), s.heat))
                })
                .collect()
        };
        self.queues[w].refill(candidates);

        // --- Promotion into headroom ---------------------------------
        let fast_used = state.workloads[w].stats.fast_used;
        let headroom = alloc.saturating_sub(fast_used) as usize;
        let budget = headroom
            .min(self.cfg.promotion_budget)
            .min(state.fast_free() as usize);
        if budget > 0 && !self.queues[w].is_empty() {
            let mut plan = self.queues[w].drain(budget);
            if !self.cfg.biased_queues {
                // Ablation: ignore Table 1 — everything goes async.
                plan.async_pages.append(&mut plan.sync_pages);
            }
            if !plan.async_pages.is_empty() {
                state.migrate_async(w, &plan.async_pages, TierKind::Fast);
            }
            if !plan.sync_pages.is_empty() {
                // Write-intensive pages: synchronous copy (Table 1) on
                // Vulcan's cheap mechanism.
                let out = state.migrate_sync(w, &plan.sync_pages, TierKind::Fast, &mech);
                self.requeue_transient_failures(state, w, &out);
            }
        }

        // --- Hot/cold swap when the partition is full -----------------
        if headroom == 0 && !self.queues[w].is_empty() {
            let swaps = self.plan_swaps(state, w);
            if !swaps.is_empty() {
                let victims: Vec<Vpn> = swaps.iter().map(|&(cold, _)| cold).collect();
                let out =
                    state.migrate_background(w, &victims, TierKind::Slow, &self.cfg.mechanism);
                let freed = out.moved.len();
                let plan = self.queues[w].drain(freed);
                if !plan.async_pages.is_empty() {
                    state.migrate_async(w, &plan.async_pages, TierKind::Fast);
                }
                if !plan.sync_pages.is_empty() {
                    let out = state.migrate_sync(
                        w,
                        &plan.sync_pages,
                        TierKind::Fast,
                        &self.cfg.mechanism,
                    );
                    self.requeue_transient_failures(state, w, &out);
                }
            }
        }
    }

    /// Chain maintenance below the fast tier. Only called on machines
    /// with a third tier — the classic two-tier testbed never reaches
    /// this code, keeping its results byte-identical. One hop per
    /// quantum in each direction: hot NVM-resident pages rise to the
    /// slow tier (where the regular promotion path can pick them up
    /// next quantum), and under slow-tier capacity pressure the coldest
    /// slow pages sink to NVM — the chained analogue of the fast-tier
    /// demotion arm.
    fn enforce_lower_chain(&mut self, state: &mut SystemState, w: usize) {
        let mech = self.cfg.mechanism;

        // Promotion: Nvm → Slow, one hop up the chain. Table 1's biased
        // queues govern only the fast tier; below it pure heat order
        // suffices (every lower-tier access is already a miss).
        let headroom = state.machine.free_pages(TierKind::Slow) as usize;
        if headroom > 0 {
            let mut hot: Vec<(Vpn, f64)> = {
                let ws = &state.workloads[w];
                ws.heat()
                    .iter()
                    .filter(|(vpn, s)| {
                        s.heat >= self.cfg.heat_threshold
                            && ws.process.space.pte(*vpn).tier() == Some(TierKind::Nvm)
                            && !ws.async_migrator.is_inflight(*vpn)
                    })
                    .map(|(vpn, s)| (vpn, s.heat))
                    .collect()
            };
            hot.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("heat values are finite (decayed EMA of sample counts)")
                    .then(a.0 .0.cmp(&b.0 .0))
            });
            hot.truncate(headroom.min(self.cfg.promotion_budget));
            if !hot.is_empty() {
                let pages: Vec<Vpn> = hot.into_iter().map(|(v, _)| v).collect();
                state.migrate_background(w, &pages, TierKind::Slow, &mech);
            }
        }

        // Demotion: Slow → Nvm when the slow tier itself is contended,
        // mirroring the fast tier's pressure threshold and rate limit.
        let slow_cap = state.machine.spec().tier(TierKind::Slow).capacity_pages;
        if state.machine.free_pages(TierKind::Slow) < slow_cap / 50 {
            let step = (self.cfg.unit_pages as usize).max(1);
            let victims: Vec<Vpn> = coldest_pages_in(state, w, TierKind::Slow, step)
                .into_iter()
                .map(|(v, _)| v)
                .collect();
            if !victims.is_empty() {
                state.migrate_background(w, &victims, TierKind::Nvm, &mech);
            }
        }
    }

    /// Pair queued hot candidates against the workload's coldest fast
    /// pages; keep pairs where the candidate is `swap_margin`× hotter.
    fn plan_swaps(&self, state: &SystemState, w: usize) -> Vec<(Vpn, Vpn)> {
        let ws = &state.workloads[w];
        let mut cold = coldest_pages_in(state, w, TierKind::Fast, self.cfg.swap_budget);
        cold.reverse(); // coldest last → pop coldest first
        let mut hot: Vec<(Vpn, f64)> = (0..4)
            .flat_map(|l| self.queues[w].level(l))
            .map(|v| (v, ws.heat().get(v).heat))
            .collect();
        hot.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("heat values are finite (decayed EMA of sample counts)")
        });
        let mut swaps = Vec::new();
        for (hv, hh) in hot.into_iter().take(self.cfg.swap_budget) {
            let Some(&(cv, ch)) = cold.last() else { break };
            if hh >= self.cfg.swap_margin * ch.max(1e-9) {
                swaps.push((cv, hv));
                cold.pop();
            } else {
                break;
            }
        }
        swaps
    }
}

/// The `n` coldest fast-resident pages of workload `w`.
fn coldest_fast_pages(state: &SystemState, w: usize, n: usize) -> Vec<Vpn> {
    coldest_pages_in(state, w, TierKind::Fast, n)
        .into_iter()
        .map(|(v, _)| v)
        .collect()
}

/// The `n` coldest pages of workload `w` resident in `tier`, with heat.
fn coldest_pages_in(state: &SystemState, w: usize, tier: TierKind, n: usize) -> Vec<(Vpn, f64)> {
    let ws = &state.workloads[w];
    let mut pages: Vec<(Vpn, f64)> = ws
        .process
        .space
        .mapped_vpns()
        .filter(|&v| ws.process.space.pte(v).tier() == Some(tier))
        .map(|v| (v, ws.heat().get(v).heat))
        .collect();
    pages.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("heat values are finite (decayed EMA of sample counts)")
            .then(a.0 .0.cmp(&b.0 .0))
    });
    pages.truncate(n);
    pages
}

impl TieringPolicy for VulcanPolicy {
    fn name(&self) -> &'static str {
        "vulcan"
    }

    /// Everything `on_quantum` reads besides the config: the CBFRP
    /// credit ledger, the classifier's EMAs and verdicts, the MLFQ
    /// queues with carried ages, the guard/fault counters and the
    /// capacity-confidence scalar. The config itself is NOT serialized —
    /// a restored policy is built with the same `VulcanConfig` first,
    /// then this state is replayed into it.
    fn snapshot_state(&self) -> Result<vulcan_json::Value, String> {
        use vulcan_json::{snap, Snapshot as _, Value};
        let opt = |v: Option<Value>| v.unwrap_or(Value::Null);
        let queues: Vec<Value> = self.queues.iter().map(|q| q.snapshot()).collect();
        let classes: Vec<Value> = self
            .last_classes
            .iter()
            .map(|c| {
                Value::Str(match c {
                    ServiceClass::LatencyCritical => "lc".to_string(),
                    ServiceClass::BestEffort => "be".to_string(),
                })
            })
            .collect();
        Ok(snap::obj(vec![
            ("cbfrp", opt(self.cbfrp.as_ref().map(|c| c.snapshot()))),
            (
                "classifier",
                opt(self.classifier.as_ref().map(|c| c.snapshot())),
            ),
            ("queues", Value::Array(queues)),
            ("guard_engaged", snap::u64_value(self.guard_engaged)),
            ("last_classes", Value::Array(classes)),
            (
                "capacity_confidence",
                snap::f64_value(self.capacity_confidence),
            ),
            ("seen_alloc_faults", snap::u64_value(self.seen_alloc_faults)),
        ]))
    }

    fn restore_state(&mut self, v: &vulcan_json::Value) -> Result<(), String> {
        use vulcan_json::{snap, Snapshot as _, Value};
        let cbfrp = match snap::field(v, "cbfrp")? {
            Value::Null => None,
            c => Some(Cbfrp::restore(c)?),
        };
        let classifier = match snap::field(v, "classifier")? {
            Value::Null => None,
            c => Some(Classifier::restore(c)?),
        };
        let queues = snap::field_array(v, "queues")?
            .iter()
            .map(PromotionQueues::restore)
            .collect::<Result<Vec<_>, String>>()?;
        let mut last_classes = Vec::new();
        for t in snap::field_array(v, "last_classes")? {
            last_classes.push(match t {
                Value::Str(s) if s == "lc" => ServiceClass::LatencyCritical,
                Value::Str(s) if s == "be" => ServiceClass::BestEffort,
                other => return Err(format!("unknown service-class tag {other:?}")),
            });
        }
        if cbfrp.is_some() != classifier.is_some() {
            return Err("vulcan state is partially initialized".to_string());
        }
        if queues.len() != last_classes.len() {
            return Err("vulcan per-workload arrays have mismatched lengths".to_string());
        }
        self.cbfrp = cbfrp;
        self.classifier = classifier;
        self.queues = queues;
        self.guard_engaged = snap::field_u64(v, "guard_engaged")?;
        self.last_classes = last_classes;
        self.capacity_confidence = snap::field_f64(v, "capacity_confidence")?;
        self.seen_alloc_faults = snap::field_u64(v, "seen_alloc_faults")?;
        Ok(())
    }

    fn on_quantum(&mut self, state: &mut SystemState) {
        let n = state.n_workloads();
        self.ensure_init(n);

        // 1. Drive per-workload async migration engines (§3.2). Pages
        //    whose transactions keep aborting have a write *rate* no
        //    async copy can outrun — escalate them to the synchronous
        //    path (the biased policy's fallback arm): one bounded stall
        //    beats an arbitrarily hot page pinned in slow memory.
        for w in 0..n {
            if !state.workloads[w].started {
                continue;
            }
            let mech = self.cfg.mechanism;
            state.poll_async(w, &mech);
            let aborted: Vec<Vpn> = {
                let ws = &state.workloads[w];
                ws.stats
                    .aborted_pages_q
                    .iter()
                    .copied()
                    .filter(|&v| ws.process.space.pte(v).tier() == Some(TierKind::Slow))
                    .collect()
            };
            if !aborted.is_empty() && state.fast_free() > aborted.len() as u64 {
                state.telemetry.emit(
                    state.now,
                    Some(&state.workloads[w].spec.name),
                    EventKind::AsyncEscalated {
                        pages: aborted.len() as u64,
                    },
                );
                let out = state.migrate_sync(w, &aborted, TierKind::Fast, &mech);
                self.requeue_transient_failures(state, w, &out);
            }
        }

        // 2. Black-box classification from utilization patterns (§3.3).
        let classifier = self.classifier.as_mut().expect("initialized");
        for (w, ws) in state.workloads.iter().enumerate() {
            if ws.started && ws.stats.active_q.0 > 0 {
                classifier.observe(w, ws.stats.memory_duty_q().min(1.0));
            }
        }
        for (w, &class) in classifier.classes().iter().enumerate() {
            if class != self.last_classes[w] {
                self.last_classes[w] = class;
                state.telemetry.emit(
                    state.now,
                    Some(&state.workloads[w].spec.name),
                    EventKind::Reclassified {
                        class: match class {
                            ServiceClass::LatencyCritical => "latency_critical".into(),
                            ServiceClass::BestEffort => "best_effort".into(),
                        },
                    },
                );
            }
        }

        // 3. QoS model + CBFRP partitioning (§3.3).
        let started: Vec<bool> = state.workloads.iter().map(|w| w.started).collect();
        let n_started = started.iter().filter(|&&s| s).count();
        if n_started == 0 {
            return;
        }
        // ISSUE 5: under sustained (injected) fast-allocation faults the
        // effective capacity is smaller than nominal — shrink the
        // entitlement CBFRP partitions so quotas stay honorable.
        let gfmc = self.degrade_gfmc(state, qos::gfmc(state.fast_capacity(), n_started));
        let demands: Vec<u64> = state
            .workloads
            .iter()
            .map(|ws| {
                if !ws.started {
                    return 0;
                }
                let rss = ws.rss_pages();
                let gpt = qos::gpt(gfmc, rss);
                let d = qos::demand(ws.stats.fast_used, gpt, ws.stats.fthr, rss);
                // Sufficiency floor: a workload meeting its target never
                // releases allocation within its own GFMC entitlement —
                // equation 3's shrink expresses fairness pressure, which
                // only applies to *borrowed* memory.
                d.max(ws.stats.fast_used.min(gfmc))
            })
            .collect();
        let classes = self
            .classifier
            .as_ref()
            .expect("initialized")
            .classes()
            .to_vec();
        state.telemetry.emit(
            state.now,
            None,
            EventKind::CbfrpRound {
                gfmc_pages: gfmc,
                active: n_started as u64,
            },
        );
        state
            .telemetry
            .record_global_phase("cbfrp.round", vulcan_sim::Cycles::ZERO);
        let partition = if self.cfg.cbfrp {
            self.cbfrp
                .as_mut()
                .expect("initialized")
                .partition(&demands, &classes, &started, gfmc)
        } else {
            // Ablation: static uniform split, no credits, no reclaim.
            crate::cbfrp::Partition {
                alloc: started.iter().map(|&s| if s { gfmc } else { 0 }).collect(),
            }
        };

        // Colloid guard (§3.6): when bandwidth contention erases the
        // fast tier's latency advantage, suspend promotion — quotas are
        // still published, demotion pressure still applies on the next
        // uncontended quantum.
        if self.cfg.colloid_guard && !self.fast_tier_worth_it(state) {
            self.guard_engaged += 1;
            for (w, &s) in started.iter().enumerate() {
                if s {
                    state.set_quota(w, partition.alloc[w]);
                }
            }
            return;
        }

        // 4-5. Enforce each workload's partition (plus, on chains with a
        //      third tier, the one-hop maintenance below the fast tier).
        let chained = state.machine.spec().n_tiers() > 2;
        for (w, &on) in started.iter().enumerate() {
            if !on {
                continue;
            }
            state.set_quota(w, partition.alloc[w]);
            self.enforce(state, w, partition.alloc[w]);
            if chained {
                self.enforce_lower_chain(state, w);
            }
        }

        // 6. Work conservation: capacity no partition claimed still
        //    serves queued hot candidates (round-robin) — an idle fast
        //    tier helps no one.
        let reserve = state.fast_capacity() / 50;
        for (w, &on) in started.iter().enumerate() {
            let slack = state.fast_free().saturating_sub(reserve) as usize;
            if slack == 0 {
                break;
            }
            if !on || self.queues[w].is_empty() {
                continue;
            }
            let mut plan = self.queues[w].drain(slack.min(self.cfg.promotion_budget));
            if !self.cfg.biased_queues {
                plan.async_pages.append(&mut plan.sync_pages);
            }
            if !plan.async_pages.is_empty() {
                state.migrate_async(w, &plan.async_pages, TierKind::Fast);
            }
            if !plan.sync_pages.is_empty() {
                let out =
                    state.migrate_sync(w, &plan.sync_pages, TierKind::Fast, &self.cfg.mechanism);
                self.requeue_transient_failures(state, w, &out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulcan_profile::HybridProfiler;
    use vulcan_runtime::{RunResult, SimConfig, SimRunner};
    use vulcan_sim::{MachineSpec, Nanos};
    use vulcan_workloads::{microbench, MicroConfig, WorkloadSpec};

    fn run_micro(specs: Vec<WorkloadSpec>, fast: u64, n_quanta: u64) -> RunResult {
        SimRunner::builder()
            .machine(MachineSpec::small(fast, 8192, 16))
            .workloads(specs)
            .profiler_factory(|_| Box::new(HybridProfiler::vulcan_default()))
            .policy(Box::new(VulcanPolicy::new()))
            .config(SimConfig {
                quantum_active: Nanos::micros(500),
                n_quanta,
                ..Default::default()
            })
            .build()
            .run()
    }

    fn mb(name: &str, rss: u64, wss: u64, fixed_op: Nanos) -> WorkloadSpec {
        microbench(
            name,
            MicroConfig {
                rss_pages: rss,
                wss_pages: wss,
                fixed_op,
                ..Default::default()
            },
            2,
        )
        .preallocated(vulcan_sim::TierKind::Slow)
    }

    #[test]
    fn solo_workload_converges_to_high_fthr() {
        let res = run_micro(vec![mb("a", 512, 64, Nanos(0))], 256, 25);
        let fthr = res.series.get("a.fthr").unwrap().last().unwrap();
        assert!(fthr > 0.8, "solo hot set promoted: fthr={fthr}");
    }

    #[test]
    fn lc_keeps_its_hot_set_under_colocation() {
        // An LC-like sparse workload co-located with a memory-hammering
        // BE workload of the same footprint. Vulcan must not let the BE
        // starve the LC's fast-memory share (the anti-dilemma property).
        let lc = mb("lc", 512, 128, Nanos(20_000));
        let be = mb("be", 512, 400, Nanos(0));
        let res = run_micro(vec![lc, be], 256, 40);
        let lc_fthr = res.series.get("lc.fthr").unwrap().last().unwrap();
        assert!(
            lc_fthr > 0.4,
            "LC gets its share despite BE intensity: {lc_fthr}"
        );
        // GPT for the LC is GFMC/RSS = 128/512 = 0.25; its FTHR must
        // clear that target (the QoS guarantee), which requires holding a
        // real slice of fast memory despite the BE's 40x access rate.
        assert!(lc_fthr > 0.25, "QoS target met: {lc_fthr}");
        let lc_fast = res.series.get("lc.fast_pages").unwrap().last().unwrap();
        assert!(lc_fast > 24.0, "LC holds a meaningful partition: {lc_fast}");
    }

    #[test]
    fn quotas_follow_cbfrp_partition() {
        let res = run_micro(
            vec![mb("a", 512, 64, Nanos(0)), mb("b", 512, 64, Nanos(0))],
            256,
            20,
        );
        // Both small hot sets fit their entitlements; neither workload
        // should hold much more than its GFMC + slack.
        for name in ["a", "b"] {
            let fast = res.series.get(&format!("{name}.fast_pages")).unwrap();
            assert!(fast.last().unwrap() <= 160.0, "{name}: {:?}", fast.last());
        }
        assert!(
            res.cfi > 0.8,
            "near-equal effective allocations: {}",
            res.cfi
        );
    }

    #[test]
    fn never_stalls_apps_for_read_intensive_migration() {
        let res = run_micro(vec![mb("a", 512, 64, Nanos(0))], 256, 20);
        // read_ratio defaults to 0.8 → most promotions are async; sync
        // stall should be small relative to, say, TPP (smoke bound).
        let w = res.workload("a");
        assert!(w.ops_total > 0);
    }

    #[test]
    fn policy_accessors() {
        let mut p = VulcanPolicy::new();
        assert!(p.classes().is_none());
        assert!(p.credits().is_none());
        p.ensure_init(2);
        assert_eq!(p.classes().unwrap().len(), 2);
        assert_eq!(p.credits().unwrap(), &[0, 0]);
        assert_eq!(p.name(), "vulcan");
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use vulcan_profile::HybridProfiler;
    use vulcan_runtime::{SimConfig, SimRunner};
    use vulcan_sim::{MachineSpec, Nanos};
    use vulcan_workloads::{microbench, MicroConfig};

    struct Noop;
    impl vulcan_runtime::TieringPolicy for Noop {
        fn name(&self) -> &'static str {
            "noop"
        }
        fn on_quantum(&mut self, _s: &mut vulcan_runtime::SystemState) {}
    }

    fn mk_runner() -> SimRunner {
        let mk = |name: &str, fixed_op: Nanos| {
            microbench(
                name,
                MicroConfig {
                    rss_pages: 512,
                    wss_pages: 128,
                    fixed_op,
                    ..Default::default()
                },
                2,
            )
            .preallocated(vulcan_sim::TierKind::Slow)
        };
        SimRunner::builder()
            .machine(MachineSpec::small(256, 8192, 16))
            .workloads(vec![mk("lc", Nanos(20_000)), mk("be", Nanos(0))])
            .profiler_factory(|_| Box::new(HybridProfiler::vulcan_default()))
            .policy(Box::new(Noop))
            .config(SimConfig {
                quantum_active: Nanos::micros(500),
                n_quanta: 0,
                ..Default::default()
            })
            .build()
    }

    /// Restore a fresh policy from a mid-run snapshot and keep driving
    /// it against the same deterministic system: every per-quantum
    /// observable must match the straight run. This is the policy-layer
    /// cell of the restore-replay identity oracle — the ledger, EMAs,
    /// MLFQ ages and fault counters are all load-bearing.
    fn run(restore_at: Option<usize>) -> (Vec<u64>, vulcan_json::Value) {
        let mut runner = mk_runner();
        let mut policy = VulcanPolicy::new();
        let mut log = Vec::new();
        for q in 0..12 {
            runner.run_quantum();
            policy.on_quantum(&mut runner.state);
            log.push(runner.state.workloads[0].stats.fast_used);
            log.push(runner.state.workloads[1].stats.fast_used);
            if restore_at == Some(q) {
                let snap_v = policy.snapshot_state().unwrap();
                let mut fresh = VulcanPolicy::new();
                fresh.restore_state(&snap_v).unwrap();
                assert_eq!(
                    fresh.snapshot_state().unwrap(),
                    snap_v,
                    "idempotent round trip"
                );
                policy = fresh;
            }
        }
        (log, policy.snapshot_state().unwrap())
    }

    #[test]
    fn restored_policy_replays_identically() {
        let (straight_log, straight_final) = run(None);
        for at in [0, 4, 9] {
            let (log, fin) = run(Some(at));
            assert_eq!(log, straight_log, "fast_used trace, restore at {at}");
            assert_eq!(fin, straight_final, "final policy state, restore at {at}");
        }
    }

    #[test]
    fn restore_rejects_partial_initialization() {
        use vulcan_json::Value;
        let mut runner = mk_runner();
        let mut policy = VulcanPolicy::new();
        runner.run_quantum();
        policy.on_quantum(&mut runner.state);
        let Value::Object(mut o) = policy.snapshot_state().unwrap() else {
            panic!("snapshot is an object")
        };
        o.insert("classifier", Value::Null);
        let err = VulcanPolicy::new()
            .restore_state(&Value::Object(o))
            .unwrap_err();
        assert!(err.contains("partially initialized"), "{err}");
    }
}

#[cfg(test)]
mod colloid_tests {
    use super::*;
    use vulcan_profile::HybridProfiler;
    use vulcan_runtime::{SimConfig, SimRunner};
    use vulcan_sim::{MachineSpec, Nanos};
    use vulcan_workloads::{microbench, MicroConfig};

    /// A machine whose fast tier saturates trivially: the loaded fast
    /// latency quickly exceeds the slow tier's.
    fn contended_machine() -> MachineSpec {
        let mut spec = MachineSpec::small(512, 4096, 8);
        // 50 MB/s: saturates instantly.
        spec.tier_mut(TierKind::Fast).bandwidth_bytes_per_ns = 0.05;
        spec
    }

    fn workload() -> vulcan_workloads::WorkloadSpec {
        microbench(
            "mb",
            MicroConfig {
                rss_pages: 1024,
                wss_pages: 256,
                ..Default::default()
            },
            4,
        )
        .preallocated(vulcan_sim::TierKind::Slow)
    }

    fn run(guard: bool) -> (vulcan_runtime::RunResult, u64) {
        let policy = VulcanPolicy::with_config(VulcanConfig {
            colloid_guard: guard,
            ..Default::default()
        });
        let engaged = std::cell::Cell::new(0);
        let mut runner = SimRunner::builder()
            .machine(contended_machine())
            .workloads(vec![workload()])
            .profiler_factory(|_| Box::new(HybridProfiler::vulcan_default()))
            .policy(Box::new(policy))
            .config(SimConfig {
                quantum_active: Nanos::micros(500),
                n_quanta: 0,
                ..Default::default()
            })
            .build();
        for _ in 0..15 {
            runner.run_quantum();
        }
        // Count migrations that happened (promotions consume fast frames).
        let _ = &engaged;
        let fast_used = runner.state.workloads[0].stats.fast_used;
        let res = runner.run();
        (res, fast_used)
    }

    #[test]
    fn guard_suspends_promotion_under_fast_tier_saturation() {
        let (_res_on, fast_on) = run(true);
        let (_res_off, fast_off) = run(false);
        assert!(
            fast_on < fast_off / 2,
            "guard pauses promotion into a saturated tier: on={fast_on} off={fast_off}"
        );
    }

    #[test]
    fn guard_counter_reports_engagements() {
        let mut policy = VulcanPolicy::with_config(VulcanConfig {
            colloid_guard: true,
            ..Default::default()
        });
        assert_eq!(policy.guard_engagements(), 0);
        let mut runner = SimRunner::builder()
            .machine(contended_machine())
            .workloads(vec![workload()])
            .profiler_factory(|_| Box::new(HybridProfiler::vulcan_default()))
            .policy(Box::new(StaticNoop))
            .config(SimConfig {
                quantum_active: Nanos::micros(500),
                n_quanta: 0,
                ..Default::default()
            })
            .build();
        // Saturate the fast tier by hand, then drive the policy directly.
        for _ in 0..3 {
            runner.run_quantum();
        }
        for _ in 0..5 {
            policy.on_quantum(&mut runner.state);
        }
        // The guard may or may not have engaged depending on measured
        // contention, but the counter must be consistent and bounded.
        assert!(policy.guard_engagements() <= 5);
    }

    /// Helper no-op policy for manual driving.
    struct StaticNoop;
    impl vulcan_runtime::TieringPolicy for StaticNoop {
        fn name(&self) -> &'static str {
            "noop"
        }
        fn on_quantum(&mut self, _s: &mut vulcan_runtime::SystemState) {}
    }

    #[test]
    fn guard_disengaged_on_healthy_machine() {
        // On the paper testbed the guard should essentially never fire.
        let mut policy = VulcanPolicy::new();
        let mut runner = SimRunner::builder()
            .machine(MachineSpec::small(512, 4096, 8))
            .workloads(vec![workload()])
            .profiler_factory(|_| Box::new(HybridProfiler::vulcan_default()))
            .policy(Box::new(StaticNoop))
            .config(SimConfig {
                quantum_active: Nanos::micros(500),
                n_quanta: 0,
                ..Default::default()
            })
            .build();
        for _ in 0..5 {
            runner.run_quantum();
            policy.on_quantum(&mut runner.state);
        }
        assert_eq!(policy.guard_engagements(), 0, "healthy tier, no pauses");
    }
}
