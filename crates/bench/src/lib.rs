//! # vulcan-bench — the paper's evaluation harness
//!
//! One binary per table and figure of the paper (see DESIGN.md §4 for the
//! full index):
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `fig1`   | hot/cold pages under Memtis, solo vs co-located + the dilemma summary |
//! | `fig2`   | single base-page migration cost breakdown, 2–32 CPUs |
//! | `fig3`   | TLB vs copy share across batch sizes and thread counts |
//! | `fig4`   | sync vs async copying across read/write ratios |
//! | `fig7`   | speedup of Vulcan's migration-mechanism optimizations |
//! | `fig8`   | migration bandwidth, 4 systems × 3 WSS scenarios |
//! | `fig9`   | Vulcan's dynamic allocation / FTHR / GPT timelines |
//! | `fig10`  | performance + CFI fairness, 4 systems, multi-trial |
//! | `table1` | the biased-migration priority/strategy matrix |
//! | `table2` | the workload/RSS inventory |
//! | `ablation` | component ablations (§3.6 discussion) |
//! | `thp`    | transparent-huge-page study: TLB reach + split-on-promotion (§3.4/§3.5) |
//! | `bias_study` | MTM → no-bias → Table 1 policy lineage (§3.5) |
//!
//! Every binary prints its rows and writes the underlying series/values
//! as JSON under `target/experiments/`.

use std::path::PathBuf;
use vulcan::prelude::*;

/// Where experiment JSON artifacts are written.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Persist a JSON artifact, pretty-printed.
pub fn save_json<T: Clone + Into<vulcan_json::Value>>(name: &str, value: &T) {
    let path = experiments_dir().join(format!("{name}.json"));
    let rendered: vulcan_json::Value = value.clone().into();
    std::fs::write(&path, rendered.to_json_pretty()).expect("write artifact");
    println!("[wrote {}]", path.display());
}

/// The four evaluated systems, in the paper's presentation order.
pub const POLICIES: [&str; 4] = ["tpp", "memtis", "nomad", "vulcan"];

/// Instantiate a policy by name.
pub fn make_policy(name: &str) -> Box<dyn TieringPolicy> {
    match name {
        "tpp" => Box::new(Tpp::new()),
        "memtis" => Box::new(Memtis::new()),
        "nomad" => Box::new(Nomad::new()),
        "vulcan" => Box::new(VulcanPolicy::new()),
        other => panic!("unknown policy {other}"),
    }
}

/// The §5.3 staggered three-application co-location.
pub fn colocation_specs() -> Vec<WorkloadSpec> {
    vec![
        memcached(),
        pagerank().starting_at(Nanos::secs(50)),
        liblinear().starting_at(Nanos::secs(110)),
    ]
}

/// Run one policy on a workload mix on the paper testbed.
pub fn run_policy(name: &str, specs: Vec<WorkloadSpec>, n_quanta: u64, seed: u64) -> RunResult {
    SimRunner::new(
        MachineSpec::paper_testbed(),
        specs,
        &mut |_| profiler_for(name),
        make_policy(name),
        SimConfig {
            n_quanta,
            seed,
            ..Default::default()
        },
    )
    .run()
}

/// Number of trials, overridable with `VULCAN_TRIALS` (paper uses 10).
pub fn trials() -> u64 {
    std::env::var("VULCAN_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_instantiate() {
        for p in POLICIES {
            assert_eq!(make_policy(p).name(), p);
        }
    }

    #[test]
    fn colocation_specs_match_paper() {
        let specs = colocation_specs();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[1].start, Nanos::secs(50));
        assert_eq!(specs[2].start, Nanos::secs(110));
    }

    #[test]
    fn experiments_dir_exists() {
        assert!(experiments_dir().is_dir());
    }
}
