//! The batched plane-sweep contract (ISSUE 8): batching is a host-side
//! throughput knob, never a results knob.
//!
//! A cell stepped with `batched_planes: true` must produce
//! [`QuantumOutcome`]s *and* per-workload heat-table contents that are
//! byte-identical to the scalar per-access loop, across THP on/off,
//! demand-fault churn, and shootdown-producing migration interleavings.
//! Fault-injection plans interleave RNG rolls per access, so armed
//! plans must force the scalar loop on both settings.

use std::cell::RefCell;
use std::rc::Rc;

use vulcan_migrate::MechanismConfig;
use vulcan_runtime::{QuantumOutcome, SimConfig, SimRunner, SystemState, TieringPolicy};
use vulcan_sim::{FaultConfig, MachineSpec, Nanos, TierKind};
use vulcan_vm::Vpn;
use vulcan_workloads::{microbench, MicroConfig, WorkloadSpec};

/// One workload's heat table, flattened to a sortable bitwise form.
type HeatDump = Vec<(u64, u64, u64, u64)>;

fn dump_heat(st: &SystemState, w: usize) -> HeatDump {
    let mut rows: HeatDump = st.workloads[w]
        .heat()
        .iter()
        .map(|(vpn, s)| {
            (
                vpn.0,
                s.heat.to_bits(),
                s.reads.to_bits(),
                s.writes.to_bits(),
            )
        })
        .collect();
    rows.sort_unstable();
    rows
}

/// Shuttles pages both ways every quantum (sync promotions stall and
/// shoot down TLBs; background demotions age out), then snapshots every
/// workload's heat table so the comparison covers profiler state, not
/// just the public outcome.
struct SnoopShuttle {
    mech: MechanismConfig,
    log: Rc<RefCell<Vec<HeatDump>>>,
}

impl SnoopShuttle {
    fn resident(st: &SystemState, w: usize, tier: TierKind, cap: usize) -> Vec<Vpn> {
        let space = &st.workloads[w].process.space;
        space
            .mapped_vpns()
            .filter(|&v| space.pte(v).tier() == Some(tier))
            .take(cap)
            .collect()
    }
}

impl TieringPolicy for SnoopShuttle {
    fn name(&self) -> &'static str {
        "snoop-shuttle"
    }

    fn on_quantum(&mut self, st: &mut SystemState) {
        for w in 0..st.n_workloads() {
            if !st.workloads[w].started {
                continue;
            }
            let up = Self::resident(st, w, TierKind::Slow, 8);
            if !up.is_empty() {
                st.migrate_sync(w, &up, TierKind::Fast, &self.mech);
            }
            let down = Self::resident(st, w, TierKind::Fast, 4);
            if !down.is_empty() {
                st.migrate_background(w, &down, TierKind::Slow, &self.mech);
            }
        }
        let mut log = self.log.borrow_mut();
        for w in 0..st.n_workloads() {
            log.push(dump_heat(st, w));
        }
    }
}

fn micro_spec(name: &str, thp: bool, seed_skew: f64) -> WorkloadSpec {
    let mut spec = microbench(
        name,
        MicroConfig {
            rss_pages: 256,
            wss_pages: 96,
            skew: seed_skew,
            ..Default::default()
        },
        2,
    );
    spec.thp = thp;
    spec
}

struct Cell {
    runner: SimRunner,
    log: Rc<RefCell<Vec<HeatDump>>>,
}

fn cell(batched: bool, thp: bool, seed: u64, faults: FaultConfig) -> Cell {
    let log = Rc::new(RefCell::new(Vec::new()));
    let runner = SimRunner::builder()
        .machine(MachineSpec::small(1_024, 4_096, 4))
        .workloads(vec![micro_spec("a", thp, 0.99), micro_spec("b", thp, 0.8)])
        .policy(Box::new(SnoopShuttle {
            mech: MechanismConfig::linux_baseline(),
            log: Rc::clone(&log),
        }))
        .config(SimConfig {
            n_quanta: 0,
            quantum_active: Nanos::micros(200),
            seed,
            batched_planes: batched,
            faults,
            ..Default::default()
        })
        .build();
    Cell { runner, log }
}

fn step(cell: &mut Cell, quanta: u64) -> Vec<QuantumOutcome> {
    (0..quanta).map(|_| cell.runner.run_quantum()).collect()
}

fn assert_lockstep(thp: bool, seed: u64, faults: FaultConfig, quanta: u64) {
    let mut scalar = cell(false, thp, seed, faults.clone());
    let mut batched = cell(true, thp, seed, faults);
    let base = step(&mut scalar, quanta);
    let plane = step(&mut batched, quanta);
    for (q, (s, b)) in base.iter().zip(&plane).enumerate() {
        assert_eq!(
            s, b,
            "outcome diverged at quantum {q} (thp={thp} seed={seed})"
        );
    }
    let base_heat = scalar.log.borrow();
    let plane_heat = batched.log.borrow();
    assert_eq!(base_heat.len(), plane_heat.len());
    for (q, (s, b)) in base_heat.iter().zip(plane_heat.iter()).enumerate() {
        assert_eq!(
            s, b,
            "heat tables diverged at snapshot {q} (thp={thp} seed={seed})"
        );
    }
}

#[test]
fn batched_matches_scalar_without_thp() {
    // Demand faults, hint faults (default Hybrid profiler poisons PTEs),
    // sync-promotion shootdowns and write hits all interleave with the
    // probe runs; outcomes and heat must not move by a bit.
    for seed in [7, 42] {
        assert_lockstep(false, seed, FaultConfig::default(), 10);
    }
}

#[test]
fn batched_matches_scalar_with_thp() {
    // THP-backed regions never enter the read-hit probe (one 2 MiB
    // entry covers them), so every huge access exercises the cold-path
    // handoff mid-plane.
    for seed in [7, 42] {
        assert_lockstep(true, seed, FaultConfig::default(), 10);
    }
}

#[test]
fn fault_plans_force_the_scalar_loop() {
    // Armed plans roll per-access RNG decisions the plane sweep cannot
    // reorder, so `batched_planes: true` must fall back to the scalar
    // loop — both settings stay byte-identical even with injection on.
    let cfg = FaultConfig {
        alloc_fast_rate: 0.05,
        sample_drop_rate: 0.05,
        ..FaultConfig::default()
    };
    assert_lockstep(false, 11, cfg, 8);
}
