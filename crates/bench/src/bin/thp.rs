//! Transparent-huge-page study (§3.4/§3.5): Vulcan "enables THPs to
//! maximize TLB coverage by default, despite proactively splitting them
//! into base pages during promotion". This bench quantifies both halves:
//! the TLB-reach benefit of 2 MiB entries, and the migration-granularity
//! benefit of splitting before promotion. The WSS × paging grid lives in
//! [`vulcan_bench::suite::thp_grid`]; each cell is stepped manually so
//! mid-run TLB state can be inspected.

use vulcan::prelude::*;
use vulcan::sim::CoreId;
use vulcan_bench::suite::{thp_grid, SuiteOpts, THP_WSS_REGIONS};
use vulcan_bench::{init_threads, save_json_or_exit};

fn main() {
    init_threads();
    let grid = thp_grid(&SuiteOpts::full());

    let mut table = Table::new(
        "THP study: TLB reach and split-on-promotion (Vulcan policy)",
        &[
            "WSS (2MiB regions)",
            "paging",
            "ops/s",
            "TLB hit ratio",
            "THP regions left",
        ],
    );
    let mut rows = Vec::new();
    for (i, &wss_regions) in THP_WSS_REGIONS.iter().enumerate() {
        for (j, thp) in [false, true].into_iter().enumerate() {
            // Grid order: WSS-major, then [4 KiB, THP].
            let cell = &grid.cells[i * 2 + j];
            let mut runner = cell.paused_runner();
            for _ in 0..cell.quanta {
                runner.run_quantum();
            }
            let mut hits = 0u64;
            let mut misses = 0u64;
            for c in 0..8u16 {
                let (h, m) = runner.state.tlbs.core(CoreId(c)).stats();
                hits += h;
                misses += m;
            }
            let tlb = hits as f64 / (hits + misses).max(1) as f64;
            let huge = runner.state.workloads[0].process.space.huge_count() as u64;
            let res = runner.into_result();
            let ops = res.workload("mb").mean_ops_per_sec;
            table.row(&[
                wss_regions.to_string(),
                if thp { "2MiB (THP)" } else { "4KiB" }.into(),
                format!("{ops:.0}"),
                format!("{tlb:.3}"),
                huge.to_string(),
            ]);
            rows.push(vulcan_json::Value::Object(
                vulcan_json::Map::new()
                    .with("wss_regions", wss_regions)
                    .with("thp", thp)
                    .with("ops_per_sec", ops)
                    .with("tlb_hit_ratio", tlb)
                    .with("huge_regions_left", huge),
            ));
        }
    }
    table.print();
    println!(
        "\nTHP extends TLB reach (one entry per 512 pages) for large working \
         sets; Vulcan still splits the regions it promotes, so base-page \
         migration granularity is preserved (fewer THP regions remain when \
         tiering pressure is high)."
    );
    save_json_or_exit("thp", &rows);
}
