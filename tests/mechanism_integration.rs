//! Integration test: migration mechanism properties across the full
//! stack — per-thread replication accounting, shadowed demotions,
//! transactional commits, and end-to-end TLB/page-table coherence.

use vulcan::prelude::*;
use vulcan::runtime::SystemState;

fn micro(name: &str, rss: u64, wss: u64, read_ratio: f64) -> WorkloadSpec {
    microbench(
        name,
        MicroConfig {
            rss_pages: rss,
            wss_pages: wss,
            read_ratio,
            ..Default::default()
        },
        4,
    )
    .preallocated(TierKind::Slow)
}

fn runner(replication: bool, read_ratio: f64) -> vulcan::runtime::SimRunner {
    vulcan::runtime::SimRunner::builder()
        .machine(MachineSpec::small(1024, 8192, 16))
        .workloads(vec![micro("mb", 2048, 512, read_ratio)])
        .profiler_factory(|_| Box::new(HybridProfiler::vulcan_default()))
        .policy(Box::new(VulcanPolicy::new()))
        .config(SimConfig {
            quantum_active: Nanos::millis(1),
            n_quanta: 20,
            replication,
            ..Default::default()
        })
        .build()
}

#[test]
fn replication_costs_memory_but_only_when_enabled() {
    let with = runner(true, 0.8).run();
    let without = runner(false, 0.8).run();
    assert!(
        with.workload("mb").replication_overhead_bytes > 0,
        "per-thread tables consume upper-level nodes"
    );
    assert_eq!(
        without.workload("mb").replication_overhead_bytes,
        0,
        "ablation: no replication, no overhead (§3.6)"
    );
    // Both converge: replication is a mechanism optimization, not a
    // correctness requirement.
    for r in [&with, &without] {
        assert!(
            r.workload("mb").mean_fthr > 0.3,
            "{}",
            r.workload("mb").mean_fthr
        );
    }
}

#[test]
fn async_transactions_commit_for_read_heavy_workloads() {
    let mut r = runner(true, 1.0);
    for _ in 0..20 {
        r.run_quantum();
    }
    let stats = r.state.workloads[0].async_migrator.stats;
    assert!(stats.started > 0, "promotions used the async engine");
    assert!(
        stats.committed * 10 >= stats.started * 8,
        "read-only pages rarely retry: {stats:?}"
    );
}

#[test]
fn write_heavy_pages_promote_synchronously() {
    // Table 1: write-intensive pages take the sync-copy path — async
    // transactions would keep hitting dirty retries (Observation #4).
    let mut r = runner(true, 0.0);
    for _ in 0..20 {
        r.run_quantum();
    }
    let ws = &r.state.workloads[0];
    assert_eq!(
        ws.async_migrator.stats.started, 0,
        "no async transactions for an all-write working set"
    );
    assert!(
        ws.stats.stall_cycles.0 > 0,
        "sync copies charge the application"
    );
    assert!(ws.stats.fast_used > 0, "promotion still converges");
}

#[test]
fn shadowed_demotions_avoid_copies() {
    let mut r = runner(true, 1.0); // read-only: shadows stay valid
    for _ in 0..20 {
        r.run_quantum();
    }
    let shadows = &r.state.workloads[0].shadows;
    let (remap_hits, _invalidations) = shadows.stats();
    assert!(
        !shadows.is_empty() || remap_hits > 0,
        "promotions retain slow-tier shadows"
    );
}

#[test]
fn page_tables_and_frame_accounting_stay_consistent() {
    let mut r = runner(true, 0.5);
    for _ in 0..15 {
        r.run_quantum();
    }
    let state: &SystemState = &r.state;
    let ws = &state.workloads[0];

    // Every mapped page's frame is marked allocated in its tier, and no
    // two pages share a frame.
    let mut seen = std::collections::HashSet::new();
    let mut fast = 0u64;
    for vpn in ws.process.space.mapped_vpns() {
        let frame = ws.process.space.pte(vpn).frame().expect("mapped");
        assert!(
            state
                .machine
                .allocator(frame.tier)
                .is_allocated(frame.index),
            "{vpn:?} maps a free frame"
        );
        assert!(
            seen.insert((frame.tier, frame.index)),
            "frame shared: {frame:?}"
        );
        if frame.tier == TierKind::Fast {
            fast += 1;
        }
    }
    assert_eq!(fast, ws.stats.fast_used, "incremental counter agrees");

    // RSS equals the preallocated footprint (nothing leaked or lost).
    assert_eq!(ws.process.space.rss_pages(), 2048);
}

#[test]
fn vulcan_mechanism_stalls_less_than_linux_baseline() {
    // Read-intensive working set: Vulcan promotes asynchronously with
    // the optimized mechanism, TPP synchronously on hinting faults with
    // the vanilla one — the application-visible stall gap is the point
    // of §3.2/§3.4/§3.5 combined.
    let tpp = vulcan::runtime::SimRunner::builder()
        .machine(MachineSpec::small(1024, 8192, 16))
        .workloads(vec![micro("mb", 2048, 512, 0.95)])
        .profiler_factory(|_| profiler_for("tpp"))
        .policy(Box::new(Tpp::new()))
        .config(SimConfig {
            quantum_active: Nanos::millis(1),
            n_quanta: 20,
            ..Default::default()
        })
        .build()
        .run();
    let vulcan_run = runner(true, 0.95).run();
    let t = tpp.workload("mb").stall_cycles.0;
    let v = vulcan_run.workload("mb").stall_cycles.0;
    assert!(
        v * 2 < t,
        "vulcan's migrations stay off the critical path: vulcan={v} tpp={t}"
    );
}
