//! Per-workload metric planes: the six per-quantum rates every run
//! accumulates (throughput, latency, FTHR, hot-page ratio, read/write
//! bandwidth), kept as one structure with a single `grow_to`/`push`
//! surface instead of six parallel `Vec<OnlineStats>` fields.

use crate::stats::OnlineStats;
use vulcan_json::snap::{self, Snapshot};
use vulcan_json::Value;

/// One quantum's sample across every plane of one workload.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PlaneSample {
    /// Operations per simulated active second.
    pub ops_per_sec: f64,
    /// Mean operation latency (ns).
    pub latency_ns: f64,
    /// Fast-tier hit ratio (post-EMA).
    pub fthr: f64,
    /// Hot-page ratio (fast-resident share of the RSS).
    pub hot_ratio: f64,
    /// Read bandwidth (GB/s).
    pub read_gbps: f64,
    /// Write bandwidth (GB/s).
    pub write_gbps: f64,
}

/// Online statistics over every plane of every workload, index-aligned
/// with the workload list. Pushing one [`PlaneSample`] per started
/// workload per quantum replaces six separate per-plane pushes.
#[derive(Clone, Debug, Default)]
pub struct StatPlanes {
    workloads: Vec<WorkloadPlanes>,
}

/// The six accumulators of one workload.
#[derive(Clone, Debug, Default)]
struct WorkloadPlanes {
    ops_per_sec: OnlineStats,
    latency_ns: OnlineStats,
    fthr: OnlineStats,
    hot_ratio: OnlineStats,
    read_gbps: OnlineStats,
    write_gbps: OnlineStats,
}

impl StatPlanes {
    /// Planes for `n` workloads.
    pub fn new(n: usize) -> StatPlanes {
        StatPlanes {
            workloads: vec![WorkloadPlanes::default(); n],
        }
    }

    /// Extend to at least `n` workloads (mid-run admission); existing
    /// accumulators are untouched.
    pub fn grow_to(&mut self, n: usize) {
        if self.workloads.len() < n {
            self.workloads.resize(n, WorkloadPlanes::default());
        }
    }

    /// Number of workloads tracked.
    pub fn len(&self) -> usize {
        self.workloads.len()
    }

    /// Whether no workload is tracked.
    pub fn is_empty(&self) -> bool {
        self.workloads.is_empty()
    }

    /// Record one quantum's sample for workload `w`.
    ///
    /// # Panics
    /// Panics if `w` was never grown to — keeping the planes
    /// index-aligned with the workload list is the caller's contract.
    pub fn push(&mut self, w: usize, s: PlaneSample) {
        let p = &mut self.workloads[w];
        p.ops_per_sec.push(s.ops_per_sec);
        p.latency_ns.push(s.latency_ns);
        p.fthr.push(s.fthr);
        p.hot_ratio.push(s.hot_ratio);
        p.read_gbps.push(s.read_gbps);
        p.write_gbps.push(s.write_gbps);
    }

    /// Plane names, in the order [`Snapshot`] serializes them.
    const PLANES: [&'static str; 6] = [
        "ops_per_sec",
        "latency_ns",
        "fthr",
        "hot_ratio",
        "read_gbps",
        "write_gbps",
    ];

    /// Per-plane means for workload `w` (zeros when nothing was pushed).
    pub fn means(&self, w: usize) -> PlaneSample {
        let p = &self.workloads[w];
        PlaneSample {
            ops_per_sec: p.ops_per_sec.mean(),
            latency_ns: p.latency_ns.mean(),
            fthr: p.fthr.mean(),
            hot_ratio: p.hot_ratio.mean(),
            read_gbps: p.read_gbps.mean(),
            write_gbps: p.write_gbps.mean(),
        }
    }
}

impl Snapshot for StatPlanes {
    fn snapshot(&self) -> Value {
        Value::Array(
            self.workloads
                .iter()
                .map(|p| {
                    snap::obj(vec![
                        ("ops_per_sec", p.ops_per_sec.snapshot()),
                        ("latency_ns", p.latency_ns.snapshot()),
                        ("fthr", p.fthr.snapshot()),
                        ("hot_ratio", p.hot_ratio.snapshot()),
                        ("read_gbps", p.read_gbps.snapshot()),
                        ("write_gbps", p.write_gbps.snapshot()),
                    ])
                })
                .collect(),
        )
    }

    fn restore(v: &Value) -> Result<Self, String> {
        let arr = v
            .as_array()
            .ok_or_else(|| "StatPlanes snapshot must be an array".to_string())?;
        let mut workloads = Vec::with_capacity(arr.len());
        for w in arr {
            let mut planes = [OnlineStats::new(); 6];
            for (slot, name) in planes.iter_mut().zip(StatPlanes::PLANES) {
                *slot = OnlineStats::restore(snap::field(w, name)?)?;
            }
            let [ops_per_sec, latency_ns, fthr, hot_ratio, read_gbps, write_gbps] = planes;
            workloads.push(WorkloadPlanes {
                ops_per_sec,
                latency_ns,
                fthr,
                hot_ratio,
                read_gbps,
                write_gbps,
            });
        }
        Ok(StatPlanes { workloads })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrips_bit_exactly() {
        let mut planes = StatPlanes::new(2);
        planes.push(
            0,
            PlaneSample {
                ops_per_sec: 1.0 / 3.0,
                latency_ns: 123.456,
                fthr: 0.9,
                hot_ratio: 0.1,
                read_gbps: 2.5,
                write_gbps: 0.0,
            },
        );
        let text = planes.snapshot().to_json();
        let back = StatPlanes::restore(&vulcan_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.len(), 2);
        let (a, b) = (planes.means(0), back.means(0));
        assert_eq!(a.ops_per_sec.to_bits(), b.ops_per_sec.to_bits());
        assert_eq!(a.latency_ns.to_bits(), b.latency_ns.to_bits());
        // The untouched workload keeps its empty sentinels (±infinity
        // min/max), which only bit-exact encoding preserves.
        assert_eq!(back.means(1), PlaneSample::default());
    }

    #[test]
    fn push_and_means_roundtrip() {
        let mut planes = StatPlanes::new(2);
        planes.push(
            1,
            PlaneSample {
                ops_per_sec: 10.0,
                latency_ns: 100.0,
                fthr: 0.5,
                hot_ratio: 0.25,
                read_gbps: 1.0,
                write_gbps: 2.0,
            },
        );
        planes.push(
            1,
            PlaneSample {
                ops_per_sec: 20.0,
                latency_ns: 300.0,
                fthr: 1.0,
                hot_ratio: 0.75,
                read_gbps: 3.0,
                write_gbps: 4.0,
            },
        );
        let m = planes.means(1);
        assert_eq!(m.ops_per_sec, 15.0);
        assert_eq!(m.latency_ns, 200.0);
        assert_eq!(m.fthr, 0.75);
        assert_eq!(m.hot_ratio, 0.5);
        assert_eq!(m.read_gbps, 2.0);
        assert_eq!(m.write_gbps, 3.0);
        // Untouched workload reports zeros.
        assert_eq!(planes.means(0), PlaneSample::default());
    }

    #[test]
    fn grow_to_preserves_existing() {
        let mut planes = StatPlanes::new(1);
        planes.push(
            0,
            PlaneSample {
                ops_per_sec: 7.0,
                ..Default::default()
            },
        );
        planes.grow_to(3);
        assert_eq!(planes.len(), 3);
        assert_eq!(planes.means(0).ops_per_sec, 7.0);
        planes.grow_to(2); // never shrinks
        assert_eq!(planes.len(), 3);
    }
}
