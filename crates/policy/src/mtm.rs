//! MTM (Ren et al., EuroSys'24), §2.1/§3.5.
//!
//! The direct ancestor of Vulcan's biased migration policy: MTM picks the
//! copy engine by **write intensity** — synchronous copying for
//! write-intensive pages, asynchronous for read-intensive ones — but has
//! no notion of thread-level page ownership (no targeted shootdowns) and
//! no multi-workload fairness, "lack\[ing\] a fine-grained consideration of
//! the migration costs inherent in multi-CPU core scenarios". Comparing
//! MTM against Vulcan isolates what ownership awareness adds on top of
//! the read/write split.

use vulcan_migrate::MechanismConfig;
use vulcan_runtime::{SystemState, TieringPolicy};
use vulcan_sim::TierKind;
use vulcan_vm::Vpn;

/// MTM configuration.
#[derive(Clone, Debug)]
pub struct MtmConfig {
    /// Write ratio at or above which a page is write-intensive.
    pub write_intensive_ratio: f64,
    /// Minimum heat for promotion eligibility.
    pub heat_threshold: f64,
    /// Max promotions per workload per quantum.
    pub promotion_budget: usize,
    /// Free-fraction low watermark triggering demotion.
    pub low_watermark: f64,
    /// Free-fraction restored by demotion.
    pub high_watermark: f64,
}

impl Default for MtmConfig {
    fn default() -> Self {
        MtmConfig {
            write_intensive_ratio: 0.25,
            heat_threshold: 0.1,
            promotion_budget: 4_096,
            low_watermark: 0.02,
            high_watermark: 0.08,
        }
    }
}

/// The MTM baseline policy.
#[derive(Clone, Debug, Default)]
pub struct Mtm {
    cfg: MtmConfig,
}

impl Mtm {
    /// MTM with defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// MTM with a custom configuration.
    pub fn with_config(cfg: MtmConfig) -> Self {
        Mtm { cfg }
    }
}

impl TieringPolicy for Mtm {
    fn name(&self) -> &'static str {
        "mtm"
    }

    fn on_quantum(&mut self, state: &mut SystemState) {
        // Vanilla mechanism: MTM has no page-table replication, so its
        // shootdowns are process-wide and preparation is global.
        let mech = MechanismConfig::linux_baseline();

        for w in 0..state.n_workloads() {
            if !state.workloads[w].started {
                continue;
            }
            state.poll_async(w, &mech);

            // Rank hot slow pages, split by write intensity.
            let (read_hot, write_hot): (Vec<Vpn>, Vec<Vpn>) = {
                let ws = &state.workloads[w];
                let mut hot: Vec<(Vpn, f64, bool)> = ws
                    .heat()
                    .iter()
                    .filter(|(vpn, s)| {
                        s.heat >= self.cfg.heat_threshold
                            && ws.process.space.pte(*vpn).tier() == Some(TierKind::Slow)
                            && !ws.async_migrator.is_inflight(*vpn)
                    })
                    .map(|(vpn, s)| {
                        (
                            vpn,
                            s.heat,
                            s.write_intensive(self.cfg.write_intensive_ratio),
                        )
                    })
                    .collect();
                hot.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0 .0.cmp(&b.0 .0)));
                hot.truncate(self.cfg.promotion_budget);
                let mut read = Vec::new();
                let mut write = Vec::new();
                for (vpn, _, wi) in hot {
                    if wi {
                        write.push(vpn);
                    } else {
                        read.push(vpn);
                    }
                }
                (read, write)
            };
            let budget = state.fast_free() as usize;
            if budget == 0 {
                continue;
            }
            // Write-intensive pages: synchronous copy (blocks the app).
            if !write_hot.is_empty() {
                let take = write_hot.len().min(budget);
                state.migrate_sync(w, &write_hot[..take], TierKind::Fast, &mech);
            }
            // Read-intensive pages: asynchronous copy.
            let budget = state.fast_free() as usize;
            if !read_hot.is_empty() && budget > 0 {
                let take = read_hot.len().min(budget);
                state.migrate_async(w, &read_hot[..take], TierKind::Fast);
            }
        }

        // Watermark demotion, coldest first (standard reclaim).
        let capacity = state.fast_capacity() as f64;
        if (state.fast_free() as f64) < self.cfg.low_watermark * capacity {
            let target_free = (self.cfg.high_watermark * capacity) as u64;
            for w in 0..state.n_workloads() {
                if state.fast_free() >= target_free {
                    break;
                }
                if !state.workloads[w].started {
                    continue;
                }
                let need = (target_free - state.fast_free()) as usize;
                let victims: Vec<Vpn> = {
                    let ws = &state.workloads[w];
                    let mut cold: Vec<(Vpn, f64)> = ws
                        .process
                        .space
                        .mapped_vpns()
                        .filter(|&v| ws.process.space.pte(v).tier() == Some(TierKind::Fast))
                        .map(|v| (v, ws.heat().get(v).heat))
                        .collect();
                    cold.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0 .0.cmp(&b.0 .0)));
                    cold.into_iter().take(need).map(|(v, _)| v).collect()
                };
                if !victims.is_empty() {
                    state.migrate_background(w, &victims, TierKind::Slow, &mech);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulcan_profile::PebsProfiler;
    use vulcan_runtime::{SimConfig, SimRunner};
    use vulcan_sim::{MachineSpec, Nanos};
    use vulcan_workloads::{microbench, MicroConfig};

    fn run(read_ratio: f64) -> vulcan_runtime::SimRunner {
        let mut r = SimRunner::builder()
            .machine(MachineSpec::small(256, 4096, 8))
            .workloads(vec![microbench(
                "mb",
                MicroConfig {
                    rss_pages: 1024,
                    wss_pages: 128,
                    read_ratio,
                    ..Default::default()
                },
                2,
            )
            .preallocated(vulcan_sim::TierKind::Slow)])
            .profiler_factory(|_| Box::new(PebsProfiler::new(8)))
            .policy(Box::new(Mtm::new()))
            .config(SimConfig {
                quantum_active: Nanos::micros(500),
                n_quanta: 0,
                ..Default::default()
            })
            .build();
        for _ in 0..20 {
            r.run_quantum();
        }
        r
    }

    #[test]
    fn read_heavy_promotions_use_async() {
        let r = run(1.0);
        let ws = &r.state.workloads[0];
        assert!(ws.async_migrator.stats.started > 0, "read pages go async");
        assert_eq!(ws.stats.stall_cycles.0, 0, "no sync copies for reads");
        assert!(ws.stats.fthr > 0.7, "converged: {}", ws.stats.fthr);
    }

    #[test]
    fn write_heavy_promotions_use_sync() {
        let r = run(0.0);
        let ws = &r.state.workloads[0];
        assert_eq!(
            ws.async_migrator.stats.started, 0,
            "write-intensive pages never go async"
        );
        assert!(ws.stats.stall_cycles.0 > 0, "sync copies charge the app");
        assert!(ws.stats.fthr > 0.7, "converged: {}", ws.stats.fthr);
    }

    #[test]
    fn name() {
        assert_eq!(Mtm::new().name(), "mtm");
    }
}
