//! Component ablation: which of Vulcan's four innovations buys what.
//!
//! §3.6 discusses the trade-offs of each mechanism (e.g. automatically
//! enabling/disabling per-thread replication). This harness re-runs the
//! three-application co-location with one component disabled at a time
//! (the variant grid lives in [`vulcan_bench::suite::ablation_grid`]):
//!
//! * `full`            — Vulcan as shipped;
//! * `no-cbfrp`        — uniform GFMC quotas instead of Algorithm 1;
//! * `no-bias`         — one FIFO heat queue, everything async (Table 1
//!   disabled);
//! * `no-replication`  — process-wide page tables and shootdowns (§3.4
//!   disabled);
//! * `no-shadowing`    — demotions always copy (§3.5's Nomad borrow
//!   disabled);
//! * `linux-mechanism` — Vulcan policy on the vanilla mechanism (global
//!   preparation + process-wide shootdowns).

use vulcan::prelude::*;
use vulcan_bench::suite::{ablation_grid, SuiteOpts};
use vulcan_bench::{init_threads, save_json_or_exit};

fn main() {
    init_threads();
    let grid = ablation_grid(&SuiteOpts::full());
    let results = grid.run();

    let mut table = Table::new(
        "Vulcan component ablation (3-app co-location, 200 s)",
        &[
            "variant",
            "mc latency(ns)",
            "mc FTHR",
            "CFI",
            "stall Mcyc",
            "PT overhead (KiB)",
        ],
    );
    let mut rows = Vec::new();
    for (cell, res) in grid.cells.iter().zip(&results) {
        let lat = res
            .series
            .get("memcached.latency_ns")
            .expect("series")
            .mean_after(150.0);
        let stall: u64 = res.per_workload.iter().map(|w| w.stall_cycles.0).sum();
        let pt_overhead: u64 = res
            .per_workload
            .iter()
            .map(|w| w.replication_overhead_bytes)
            .sum();
        table.row(&[
            cell.label.clone(),
            format!("{lat:.0}"),
            format!("{:.3}", res.workload("memcached").mean_fthr),
            format!("{:.3}", res.cfi),
            format!("{:.1}", stall as f64 / 1e6),
            format!("{}", pt_overhead / 1024),
        ]);
        rows.push(vulcan_json::Value::Object(
            vulcan_json::Map::new()
                .with("variant", cell.label.as_str())
                .with("memcached_latency_ns", lat)
                .with("memcached_fthr", res.workload("memcached").mean_fthr)
                .with("cfi", res.cfi)
                .with("total_stall_cycles", stall)
                .with("pagetable_overhead_bytes", pt_overhead),
        ));
    }
    table.print();
    println!(
        "\nReading: the mechanism optimizations dominate the overhead story \
         (the linux-mechanism variant roughly doubles total stall and adds \
         latency); shadowing buys demotion latency; replication trades \
         page-table memory for targeted shootdowns (§3.6). With all three \
         apps saturating their entitlements, CBFRP degenerates to the \
         uniform split — its value shows when demands are asymmetric and \
         the LC must reclaim from an over-entitled BE (see the \
         fair_partitioning example and cbfrp unit tests)."
    );
    save_json_or_exit("ablation", &rows);
}
