//! Telemetry and tracing for the Vulcan simulator.
//!
//! The subsystem has four parts:
//!
//! 1. a typed metrics registry — monotonic [`Counter`]s, gauges and
//!    fixed-bucket [`Histogram`]s keyed by static names, cheap enough
//!    for hot paths (a counter increment is one relaxed atomic add);
//! 2. span-style phase accounting ([`Telemetry::record_phase`]) for
//!    migration phases, CBFRP rounds and profiler scans, accumulated
//!    per-workload and globally;
//! 3. a bounded, deterministic structured [`Event`] ring: every event
//!    carries a monotonic sequence number and the *simulated* timestamp
//!    at which it occurred — no wall-clock anywhere, so two runs with
//!    the same seed produce byte-identical traces;
//! 4. sinks: an in-memory [`Snapshot`], a JSON-lines exporter
//!    ([`Telemetry::events_jsonl`]) and a human-readable summary
//!    ([`Telemetry::summary`]) built on [`vulcan_metrics::report::Table`].
//!
//! The handle is an `Option<Arc<_>>` internally: [`Telemetry::disabled`]
//! (the [`Default`]) carries `None`, so every recording call is a branch
//! on a null pointer and the simulator's results are identical whether
//! tracing is on or off. Telemetry never consumes randomness and never
//! influences control flow.

#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use vulcan_json::{Map, Value};
use vulcan_metrics::report::Table;
use vulcan_sim::{Cycles, Nanos};

pub mod event;

pub use event::{Event, EventKind};

/// Default capacity of the structured event ring.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// A monotonic counter handle.
///
/// Obtain once via [`Telemetry::counter`] and keep it next to the hot
/// path; incrementing is a single relaxed atomic add (or a no-op when
/// telemetry is disabled).
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram handle.
///
/// Bucket `i` counts samples `<= bounds[i]`; one extra overflow bucket
/// counts the rest. Sum and count are tracked exactly.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistInner>>);

#[derive(Debug)]
struct HistInner {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.0 {
            let idx = h
                .bounds
                .iter()
                .position(|&b| value <= b)
                .unwrap_or(h.bounds.len());
            h.buckets[idx].fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(value, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total number of samples recorded (0 when disabled).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.count.load(Ordering::Relaxed))
    }
}

/// Snapshot of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Inclusive upper bounds of the finite buckets.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one longer than `bounds` (last is overflow).
    pub buckets: Vec<u64>,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Number of samples.
    pub count: u64,
}

impl HistSnapshot {
    /// Mean sample value (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Accumulated statistics for one (scope, phase) span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of spans recorded.
    pub count: u64,
    /// Total simulated cycles across all spans.
    pub total_cycles: u64,
    /// Longest single span, in cycles.
    pub max_cycles: u64,
}

impl SpanStats {
    fn record(&mut self, cycles: u64) {
        self.count += 1;
        self.total_cycles += cycles;
        self.max_cycles = self.max_cycles.max(cycles);
    }
}

/// Scope name used for system-wide (non-workload) spans.
pub const GLOBAL_SCOPE: &str = "*";

// ---------------------------------------------------------------------------
// The Telemetry handle
// ---------------------------------------------------------------------------

struct Inner {
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<HistInner>>>,
    // Keyed (scope, phase); scope is a workload name or GLOBAL_SCOPE.
    spans: Mutex<BTreeMap<(String, &'static str), SpanStats>>,
    ring: Mutex<Ring>,
}

struct Ring {
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    events: VecDeque<Event>,
}

impl Ring {
    fn emit(&mut self, at: Nanos, workload: Option<&str>, kind: EventKind) {
        let event = Event {
            seq: self.next_seq,
            at,
            workload: workload.map(str::to_string),
            kind,
        };
        self.next_seq += 1;
        self.events.push_back(event);
        if self.events.len() > self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
    }
}

/// The telemetry handle threaded through the simulator.
///
/// Cloning is cheap (an `Arc` bump); all clones share one registry and
/// one event ring. The [`Default`] is [`Telemetry::disabled`], under
/// which every method is a no-op.
#[derive(Clone, Default)]
pub struct Telemetry(Option<Arc<Inner>>);

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A disabled handle: every recording call is a no-op.
    pub fn disabled() -> Telemetry {
        Telemetry(None)
    }

    /// An enabled handle with the default ring capacity.
    pub fn enabled() -> Telemetry {
        Telemetry::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An enabled handle keeping at most `ring_capacity` events (older
    /// events are evicted in order; the count of evictions is kept).
    pub fn with_capacity(ring_capacity: usize) -> Telemetry {
        Telemetry(Some(Arc::new(Inner {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
            ring: Mutex::new(Ring {
                capacity: ring_capacity.max(1),
                next_seq: 0,
                dropped: 0,
                events: VecDeque::new(),
            }),
        })))
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Look up (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        Counter(self.0.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .counters
                    .lock()
                    .expect("telemetry counter registry poisoned")
                    .entry(name)
                    .or_default(),
            )
        }))
    }

    /// Look up (registering on first use) the histogram named `name`.
    ///
    /// `bounds` are inclusive upper bucket bounds, strictly increasing;
    /// they are fixed at first registration and later calls with the
    /// same name reuse the original buckets.
    pub fn histogram(&self, name: &'static str, bounds: &[u64]) -> Histogram {
        Histogram(self.0.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .histograms
                    .lock()
                    .expect("telemetry histogram registry poisoned")
                    .entry(name)
                    .or_insert_with(|| {
                        debug_assert!(
                            bounds.windows(2).all(|w| w[0] < w[1]),
                            "histogram bounds must be strictly increasing"
                        );
                        Arc::new(HistInner {
                            bounds: bounds.to_vec(),
                            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                            sum: AtomicU64::new(0),
                            count: AtomicU64::new(0),
                        })
                    }),
            )
        }))
    }

    /// Set the gauge named `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.0 {
            inner
                .gauges
                .lock()
                .expect("telemetry gauge registry poisoned")
                .insert(name, value);
        }
    }

    /// Record one span of `cycles` for `phase`, attributed to `scope`
    /// (a workload name, or [`GLOBAL_SCOPE`] via [`Telemetry::record_global_phase`]).
    pub fn record_phase(&self, scope: &str, phase: &'static str, cycles: Cycles) {
        if let Some(inner) = &self.0 {
            inner
                .spans
                .lock()
                .expect("telemetry span registry poisoned")
                .entry((scope.to_string(), phase))
                .or_default()
                .record(cycles.0);
        }
    }

    /// Record a system-wide span (not attributable to one workload).
    pub fn record_global_phase(&self, phase: &'static str, cycles: Cycles) {
        self.record_phase(GLOBAL_SCOPE, phase, cycles);
    }

    /// Append a structured event to the ring at simulated time `at`.
    pub fn emit(&self, at: Nanos, workload: Option<&str>, kind: EventKind) {
        if let Some(inner) = &self.0 {
            inner
                .ring
                .lock()
                .expect("telemetry event ring poisoned")
                .emit(at, workload, kind);
        }
    }

    /// Take a consistent snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.0 else {
            return Snapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .expect("telemetry counter registry poisoned")
            .iter()
            .map(|(name, c)| (name.to_string(), c.load(Ordering::Relaxed)))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .expect("telemetry gauge registry poisoned")
            .iter()
            .map(|(name, v)| (name.to_string(), *v))
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .expect("telemetry histogram registry poisoned")
            .iter()
            .map(|(name, h)| {
                (
                    name.to_string(),
                    HistSnapshot {
                        bounds: h.bounds.clone(),
                        buckets: h
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        sum: h.sum.load(Ordering::Relaxed),
                        count: h.count.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        let spans: BTreeMap<(String, String), SpanStats> = inner
            .spans
            .lock()
            .expect("telemetry span registry poisoned")
            .iter()
            .map(|((scope, phase), s)| ((scope.clone(), phase.to_string()), *s))
            .collect();
        let ring = inner.ring.lock().expect("telemetry event ring poisoned");
        Snapshot {
            counters,
            gauges,
            histograms,
            spans,
            events: ring.events.iter().cloned().collect(),
            dropped_events: ring.dropped,
            total_events: ring.next_seq,
        }
    }

    /// Render the retained events as JSON lines (one object per line,
    /// in sequence order). Empty string when disabled.
    pub fn events_jsonl(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for e in &snap.events {
            out.push_str(&e.to_value().to_json());
            out.push('\n');
        }
        out
    }

    /// Render a human-readable summary of counters, gauges, phase spans
    /// and event counts.
    pub fn summary(&self) -> String {
        self.snapshot().summary()
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// In-memory snapshot of a [`Telemetry`] handle. All maps are ordered
/// (BTree), so rendering is deterministic.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistSnapshot>,
    /// Span statistics keyed by (scope, phase).
    pub spans: BTreeMap<(String, String), SpanStats>,
    /// Retained events, oldest first (sequence order).
    pub events: Vec<Event>,
    /// Events evicted from the ring because it was full.
    pub dropped_events: u64,
    /// Total events ever emitted (retained + dropped).
    pub total_events: u64,
}

impl Snapshot {
    /// Per-phase span totals summed over every scope.
    pub fn global_spans(&self) -> BTreeMap<String, SpanStats> {
        let mut out: BTreeMap<String, SpanStats> = BTreeMap::new();
        for ((_, phase), s) in &self.spans {
            let g = out.entry(phase.clone()).or_default();
            g.count += s.count;
            g.total_cycles += s.total_cycles;
            g.max_cycles = g.max_cycles.max(s.max_cycles);
        }
        out
    }

    /// Count of retained events per kind name.
    pub fn event_counts(&self) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for e in &self.events {
            *out.entry(e.kind.name()).or_insert(0) += 1;
        }
        out
    }

    /// Structured JSON form of the whole snapshot.
    pub fn to_value(&self) -> Value {
        let mut counters = Map::new();
        for (k, v) in &self.counters {
            counters.insert(k.clone(), *v);
        }
        let mut gauges = Map::new();
        for (k, v) in &self.gauges {
            gauges.insert(k.clone(), *v);
        }
        let mut hists = Map::new();
        for (k, h) in &self.histograms {
            hists.insert(
                k.clone(),
                Map::new()
                    .with("bounds", h.bounds.clone())
                    .with("buckets", h.buckets.clone())
                    .with("sum", h.sum)
                    .with("count", h.count),
            );
        }
        let spans: Vec<Value> = self
            .spans
            .iter()
            .map(|((scope, phase), s)| {
                Value::Object(
                    Map::new()
                        .with("scope", scope.clone())
                        .with("phase", phase.clone())
                        .with("count", s.count)
                        .with("total_cycles", s.total_cycles)
                        .with("max_cycles", s.max_cycles),
                )
            })
            .collect();
        let events: Vec<Value> = self.events.iter().map(Event::to_value).collect();
        Value::Object(
            Map::new()
                .with("counters", counters)
                .with("gauges", gauges)
                .with("histograms", hists)
                .with("spans", spans)
                .with("events", events)
                .with("dropped_events", self.dropped_events)
                .with("total_events", self.total_events),
        )
    }

    /// Human-readable multi-table summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();

        if !self.counters.is_empty() || !self.gauges.is_empty() {
            let mut t = Table::new("telemetry: counters & gauges", &["metric", "value"]);
            for (k, v) in &self.counters {
                t.row(&[k.clone(), v.to_string()]);
            }
            for (k, v) in &self.gauges {
                t.row(&[k.clone(), format!("{v:.3}")]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }

        if !self.histograms.is_empty() {
            let mut t = Table::new(
                "telemetry: histograms",
                &["histogram", "count", "mean", "buckets (<=bound: n)"],
            );
            for (k, h) in &self.histograms {
                let mut cells = Vec::new();
                for (i, n) in h.buckets.iter().enumerate() {
                    if *n == 0 {
                        continue;
                    }
                    match h.bounds.get(i) {
                        Some(b) => cells.push(format!("<={b}: {n}")),
                        None => cells.push(format!(">: {n}")),
                    }
                }
                t.row(&[
                    k.clone(),
                    h.count.to_string(),
                    format!("{:.1}", h.mean()),
                    cells.join("  "),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }

        if !self.spans.is_empty() {
            let mut t = Table::new(
                "telemetry: phase spans (simulated cycles)",
                &[
                    "scope",
                    "phase",
                    "count",
                    "total (Mcyc)",
                    "mean (cyc)",
                    "max (cyc)",
                ],
            );
            for ((scope, phase), s) in &self.spans {
                let mean = if s.count == 0 {
                    0.0
                } else {
                    s.total_cycles as f64 / s.count as f64
                };
                t.row(&[
                    scope.clone(),
                    phase.clone(),
                    s.count.to_string(),
                    format!("{:.2}", s.total_cycles as f64 / 1e6),
                    format!("{mean:.0}"),
                    s.max_cycles.to_string(),
                ]);
            }
            for (phase, s) in self.global_spans() {
                t.row(&[
                    "(all)".into(),
                    phase,
                    s.count.to_string(),
                    format!("{:.2}", s.total_cycles as f64 / 1e6),
                    format!(
                        "{:.0}",
                        if s.count == 0 {
                            0.0
                        } else {
                            s.total_cycles as f64 / s.count as f64
                        }
                    ),
                    s.max_cycles.to_string(),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }

        let mut t = Table::new("telemetry: events", &["kind", "retained"]);
        for (kind, n) in self.event_counts() {
            t.row(&[kind.to_string(), n.to_string()]);
        }
        t.row(&["(dropped)".into(), self.dropped_events.to_string()]);
        t.row(&["(total emitted)".into(), self.total_events.to_string()]);
        out.push_str(&t.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_noop() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let c = t.counter("x");
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let h = t.histogram("h", &[1, 2]);
        h.record(1);
        assert_eq!(h.count(), 0);
        t.set_gauge("g", 1.0);
        t.record_phase("w", "copy", Cycles(100));
        t.emit(
            Nanos(0),
            None,
            EventKind::ProfilerScan { pages_poisoned: 1 },
        );
        let snap = t.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.events.is_empty());
        assert_eq!(t.events_jsonl(), "");
    }

    #[test]
    fn counters_shared_across_clones() {
        let t = Telemetry::enabled();
        let c1 = t.counter("pages.promoted");
        let c2 = t.clone().counter("pages.promoted");
        c1.add(3);
        c2.add(4);
        assert_eq!(c1.get(), 7);
        assert_eq!(t.snapshot().counters["pages.promoted"], 7);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let t = Telemetry::enabled();
        let h = t.histogram("lat", &[10, 100, 1000]);
        for v in [1, 10, 11, 500, 5000] {
            h.record(v);
        }
        let snap = t.snapshot();
        let hs = &snap.histograms["lat"];
        assert_eq!(hs.buckets, vec![2, 1, 1, 1]);
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 5522);
        assert!((hs.mean() - 5522.0 / 5.0).abs() < 1e-9);
        // Re-registering with different bounds keeps the original.
        let h2 = t.histogram("lat", &[1]);
        h2.record(5000);
        assert_eq!(t.snapshot().histograms["lat"].buckets, vec![2, 1, 1, 2]);
    }

    #[test]
    fn spans_accumulate_per_scope_and_globally() {
        let t = Telemetry::enabled();
        t.record_phase("memcached", "copy", Cycles(100));
        t.record_phase("memcached", "copy", Cycles(300));
        t.record_phase("pagerank", "copy", Cycles(50));
        t.record_global_phase("cbfrp_round", Cycles(42));
        let snap = t.snapshot();
        let mc = snap.spans[&("memcached".to_string(), "copy".to_string())];
        assert_eq!(mc.count, 2);
        assert_eq!(mc.total_cycles, 400);
        assert_eq!(mc.max_cycles, 300);
        let global = snap.global_spans();
        assert_eq!(global["copy"].count, 3);
        assert_eq!(global["copy"].total_cycles, 450);
        assert_eq!(global["cbfrp_round"].total_cycles, 42);
        assert!(snap.summary().contains("cbfrp_round"));
    }

    #[test]
    fn ring_evicts_oldest_in_order() {
        let t = Telemetry::with_capacity(3);
        for i in 0..5u64 {
            t.emit(
                Nanos(i * 10),
                Some("w"),
                EventKind::PagesPromoted {
                    pages: i,
                    sync: false,
                },
            );
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.dropped_events, 2);
        assert_eq!(snap.total_events, 5);
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert!(snap.events.windows(2).all(|w| w[0].at.0 < w[1].at.0));
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let t = Telemetry::enabled();
        t.emit(
            Nanos(5),
            Some("mc"),
            EventKind::WorkloadArrival { rss_pages: 64 },
        );
        t.emit(
            Nanos(9),
            Some("mc"),
            EventKind::PagesDemoted {
                pages: 3,
                remap_only: 3,
            },
        );
        t.emit(
            Nanos(12),
            None,
            EventKind::CbfrpRound {
                gfmc_pages: 7,
                active: 2,
            },
        );
        let jsonl = t.events_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let v = vulcan_json::parse(line).expect("valid JSON line");
            assert!(v.get("seq").is_some());
            assert!(v.get("t_ns").is_some());
            assert!(v.get("event").and_then(Value::as_str).is_some());
        }
        let v0 = vulcan_json::parse(lines[0]).unwrap();
        assert_eq!(
            v0.get("event").and_then(Value::as_str),
            Some("workload_arrival")
        );
        assert_eq!(v0.get("workload").and_then(Value::as_str), Some("mc"));
        assert_eq!(v0.get("rss_pages").and_then(Value::as_u64), Some(64));
    }

    #[test]
    fn snapshot_to_value_is_valid_json() {
        let t = Telemetry::enabled();
        t.counter("a").add(2);
        t.set_gauge("g", 0.5);
        t.histogram("h", &[8]).record(3);
        t.record_phase("w", "unmap", Cycles(9));
        t.emit(Nanos(1), Some("w"), EventKind::WorkloadDeparture);
        let text = t.snapshot().to_value().to_json_pretty();
        let v = vulcan_json::parse(&text).expect("snapshot JSON parses");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("a"))
                .and_then(Value::as_u64),
            Some(2)
        );
        assert_eq!(v.get("total_events").and_then(Value::as_u64), Some(1));
    }
}
