//! Figure 4: synchronous vs asynchronous page copying for hot-page
//! promotion across read/write ratios (higher is better).
//!
//! Methodology follows §2.2: hot pages are promoted from the slow tier
//! *while the application keeps accessing them* — the working set drifts
//! continuously, so migration pressure never dies down. Asynchronous
//! (transactional) copying excels for read-intensive patterns — no
//! stalls — but write-intensive patterns dirty the copy window, forcing
//! retries/aborts; synchronous copying stalls the accessors but always
//! lands the page. The sweep itself lives in
//! [`vulcan_bench::suite::fig4_grid`] (ratio × trial × engine).

use vulcan::prelude::Table;
use vulcan_bench::suite::{fig4_grid, SuiteOpts, FIG4_RATIOS};
use vulcan_bench::{init_threads, save_json_or_exit, trials};

fn main() {
    init_threads();
    let n_trials = trials() as usize;
    let results = fig4_grid(&SuiteOpts::full()).run();

    let mut table = Table::new(
        "Figure 4: hot-page promotion throughput (ops/s) vs read ratio",
        &["read ratio", "sync copy", "async copy", "async/sync"],
    );
    let mut rows = Vec::new();
    for (ri, &r) in FIG4_RATIOS.iter().enumerate() {
        let (mut sync_stats, mut async_stats) = (
            vulcan::metrics::OnlineStats::new(),
            vulcan::metrics::OnlineStats::new(),
        );
        for trial in 0..n_trials {
            // Grid order: ratio-major, then trial, then [sync, async].
            let base = (ri * n_trials + trial) * 2;
            sync_stats.push(results[base].workload("mb").mean_ops_per_sec);
            async_stats.push(results[base + 1].workload("mb").mean_ops_per_sec);
        }
        let (s, a) = (sync_stats.mean(), async_stats.mean());
        table.row(&[
            format!("{r:.2}"),
            format!("{s:.0}"),
            format!("{a:.0}"),
            format!("{:.3}", a / s),
        ]);
        rows.push(vulcan_json::Value::Object(
            vulcan_json::Map::new()
                .with("read_ratio", r)
                .with("sync_ops", s)
                .with("async_ops", a)
                .with("sync_ci95", sync_stats.ci95())
                .with("async_ci95", async_stats.ci95()),
        ));
    }
    table.print();
    println!(
        "\nPaper: async wins for read-intensive access (no copy stalls); \
         sync wins for write-intensive access (no dirty retries/aborts)."
    );
    save_json_or_exit("fig4", &rows);
}
