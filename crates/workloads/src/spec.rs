//! Workload specifications and the Table 2 presets.

use crate::apps::{KvConfig, KvStore, PageRank, PrConfig, Sweep, SweepConfig};
use crate::bufferpool::{BufferPool, BufferPoolConfig};
use crate::gen::AccessGen;
use crate::microbench::{MicroConfig, Microbench};
use crate::trace::{Trace, TraceReplayer};
use std::sync::Arc;
use vulcan_sim::{Nanos, TierKind};

/// Ground-truth service class of a workload.
///
/// The runtime reports this for evaluation; Vulcan's daemon does **not**
/// read it — it classifies black-box workloads from their utilization
/// patterns (§3.3), and the classifier is tested against this truth.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Online service; performance = request latency.
    LatencyCritical,
    /// Batch job; performance = throughput.
    BestEffort,
}

/// Which generator a workload uses.
#[derive(Clone, Debug)]
pub enum WorkloadKind {
    /// Memcached-like KV store.
    Kv(KvConfig),
    /// PageRank-like graph computation.
    PageRank(PrConfig),
    /// Liblinear-like training sweep.
    Sweep(SweepConfig),
    /// Nomad-style Zipfian microbenchmark.
    Micro(MicroConfig),
    /// Database buffer pool: phase-alternating scans and point lookups.
    BufferPool(BufferPoolConfig),
    /// Replay of a recorded access trace.
    Replay(Arc<Trace>),
}

/// A complete workload description the runtime can instantiate.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Display name.
    pub name: String,
    /// Ground-truth class (evaluation only).
    pub class: WorkloadClass,
    /// Worker threads.
    pub n_threads: usize,
    /// Simulated start time (staggered arrivals, §5.3).
    pub start: Nanos,
    /// Generator configuration.
    pub kind: WorkloadKind,
    /// Pre-map the whole RSS into a tier before the run (the §5.2
    /// microbenchmarks "allocate data to specific segments of the tiered
    /// memory"); `None` means demand paging.
    pub prealloc: Option<TierKind>,
    /// Back demand-paged memory with transparent huge pages: faults map
    /// whole 2 MiB regions and the TLB caches one entry per region
    /// (§3.5 enables THP by default for TLB coverage).
    pub thp: bool,
    /// Simulated departure time: the workload terminates, releasing all
    /// of its memory (GFMC then redistributes over the survivors, §3.3's
    /// "dynamically adjusting based on n"). `None` = runs forever.
    pub stop: Option<Nanos>,
}

impl WorkloadSpec {
    /// Instantiate the access generator.
    pub fn build(&self) -> Box<dyn AccessGen> {
        match &self.kind {
            WorkloadKind::Kv(c) => Box::new(KvStore::new(c.clone())),
            WorkloadKind::PageRank(c) => Box::new(PageRank::new(PrConfig {
                n_threads: self.n_threads,
                ..c.clone()
            })),
            WorkloadKind::Sweep(c) => Box::new(Sweep::new(SweepConfig {
                n_threads: self.n_threads,
                ..c.clone()
            })),
            WorkloadKind::Micro(c) => Box::new(Microbench::new(c.clone())),
            WorkloadKind::BufferPool(c) => Box::new(BufferPool::new(BufferPoolConfig {
                n_threads: self.n_threads,
                ..c.clone()
            })),
            WorkloadKind::Replay(t) => {
                Box::new(TraceReplayer::new(t.clone()).expect("validated trace"))
            }
        }
    }

    /// The workload's RSS in pages.
    pub fn rss_pages(&self) -> u64 {
        match &self.kind {
            WorkloadKind::Kv(c) => c.rss_pages,
            WorkloadKind::PageRank(c) => c.rss_pages,
            WorkloadKind::Sweep(c) => c.rss_pages,
            WorkloadKind::Micro(c) => c.rss_pages,
            WorkloadKind::BufferPool(c) => c.rss_pages,
            WorkloadKind::Replay(t) => t.rss_pages,
        }
    }

    /// Delay the workload's start (the paper starts PageRank at 50 s and
    /// Liblinear at 110 s, §5.3).
    pub fn starting_at(mut self, t: Nanos) -> Self {
        self.start = t;
        self
    }

    /// Pre-map the whole RSS into `tier` before the run.
    pub fn preallocated(mut self, tier: TierKind) -> Self {
        self.prealloc = Some(tier);
        self
    }

    /// Enable transparent huge pages for this workload.
    pub fn with_thp(mut self) -> Self {
        self.thp = true;
        self
    }

    /// Terminate the workload at `t`, releasing its memory.
    pub fn stopping_at(mut self, t: Nanos) -> Self {
        self.stop = Some(t);
        self
    }
}

impl vulcan_json::Snapshot for WorkloadKind {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::{snap, Value};
        let (tag, cfg) = match self {
            WorkloadKind::Kv(c) => ("kv", c.snapshot()),
            WorkloadKind::PageRank(c) => ("pagerank", c.snapshot()),
            WorkloadKind::Sweep(c) => ("sweep", c.snapshot()),
            WorkloadKind::Micro(c) => ("micro", c.snapshot()),
            WorkloadKind::BufferPool(c) => ("bufferpool", c.snapshot()),
            WorkloadKind::Replay(t) => ("replay", t.to_value()),
        };
        snap::obj(vec![("kind", Value::Str(tag.to_string())), ("config", cfg)])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        let cfg = snap::field(v, "config")?;
        Ok(match snap::field_str(v, "kind")? {
            "kv" => WorkloadKind::Kv(KvConfig::restore(cfg)?),
            "pagerank" => WorkloadKind::PageRank(PrConfig::restore(cfg)?),
            "sweep" => WorkloadKind::Sweep(SweepConfig::restore(cfg)?),
            "micro" => WorkloadKind::Micro(MicroConfig::restore(cfg)?),
            "bufferpool" => WorkloadKind::BufferPool(BufferPoolConfig::restore(cfg)?),
            "replay" => WorkloadKind::Replay(Arc::new(Trace::from_value(cfg)?)),
            other => return Err(format!("unknown workload kind \"{other}\"")),
        })
    }
}

impl vulcan_json::Snapshot for WorkloadSpec {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::{snap, Value};
        let class = match self.class {
            WorkloadClass::LatencyCritical => "lc",
            WorkloadClass::BestEffort => "be",
        };
        let prealloc = match self.prealloc {
            Some(t) => Value::Str(t.name().to_string()),
            None => Value::Null,
        };
        let stop = match self.stop {
            Some(t) => snap::u64_value(t.0),
            None => Value::Null,
        };
        snap::obj(vec![
            ("name", Value::Str(self.name.clone())),
            ("class", Value::Str(class.to_string())),
            ("n_threads", snap::u64_value(self.n_threads as u64)),
            ("start", snap::u64_value(self.start.0)),
            ("kind", self.kind.snapshot()),
            ("prealloc", prealloc),
            ("thp", Value::Bool(self.thp)),
            ("stop", stop),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::{snap, Value};
        let class = match snap::field_str(v, "class")? {
            "lc" => WorkloadClass::LatencyCritical,
            "be" => WorkloadClass::BestEffort,
            other => return Err(format!("unknown workload class \"{other}\"")),
        };
        let prealloc = match snap::field(v, "prealloc")? {
            Value::Null => None,
            Value::Str(s) => Some(
                TierKind::ALL
                    .iter()
                    .copied()
                    .find(|t| t.name() == s.as_str())
                    .ok_or_else(|| format!("unknown prealloc tier \"{s}\""))?,
            ),
            _ => return Err("prealloc is neither null nor a tier name".to_string()),
        };
        let stop = match snap::field(v, "stop")? {
            Value::Null => None,
            other => Some(Nanos(snap::value_u64(other)?)),
        };
        Ok(WorkloadSpec {
            name: snap::field_str(v, "name")?.to_string(),
            class,
            n_threads: snap::field_usize(v, "n_threads")?,
            start: Nanos(snap::field_u64(v, "start")?),
            kind: WorkloadKind::restore(snap::field(v, "kind")?)?,
            prealloc,
            thp: snap::field_bool(v, "thp")?,
            stop,
        })
    }
}

/// Table 2: Memcached, 51 GB, YCSB-style KV — latency-critical.
pub fn memcached() -> WorkloadSpec {
    WorkloadSpec {
        name: "memcached".into(),
        class: WorkloadClass::LatencyCritical,
        n_threads: 8,
        start: Nanos::ZERO,
        kind: WorkloadKind::Kv(KvConfig::default()),
        prealloc: None,
        thp: false,
        stop: None,
    }
}

/// Table 2: PageRank, 42 GB web-graph scoring — best-effort.
pub fn pagerank() -> WorkloadSpec {
    WorkloadSpec {
        name: "pagerank".into(),
        class: WorkloadClass::BestEffort,
        n_threads: 8,
        start: Nanos::ZERO,
        kind: WorkloadKind::PageRank(PrConfig::default()),
        prealloc: None,
        thp: false,
        stop: None,
    }
}

/// Table 2: Liblinear on KDD12, 69 GB — best-effort.
pub fn liblinear() -> WorkloadSpec {
    WorkloadSpec {
        name: "liblinear".into(),
        class: WorkloadClass::BestEffort,
        n_threads: 8,
        start: Nanos::ZERO,
        kind: WorkloadKind::Sweep(SweepConfig::default()),
        prealloc: None,
        thp: false,
        stop: None,
    }
}

/// A workload replaying a recorded trace.
pub fn replay(name: &str, trace: Arc<Trace>, class: WorkloadClass) -> WorkloadSpec {
    let n_threads = trace.n_threads;
    WorkloadSpec {
        name: name.into(),
        class,
        n_threads,
        start: Nanos::ZERO,
        kind: WorkloadKind::Replay(trace),
        prealloc: None,
        thp: false,
        stop: None,
    }
}

/// A microbenchmark workload (Figures 4 and 8).
pub fn microbench(name: &str, cfg: MicroConfig, n_threads: usize) -> WorkloadSpec {
    WorkloadSpec {
        name: name.into(),
        class: WorkloadClass::BestEffort,
        n_threads,
        start: Nanos::ZERO,
        kind: WorkloadKind::Micro(cfg),
        prealloc: None,
        thp: false,
        stop: None,
    }
}

/// A buffer-pool workload (scan/point-lookup phases over a paged
/// relation). Classed best-effort by default: the scan phases dominate
/// its runtime and its metric of interest is sweep throughput.
pub fn bufferpool(name: &str, cfg: BufferPoolConfig, n_threads: usize) -> WorkloadSpec {
    WorkloadSpec {
        name: name.into(),
        class: WorkloadClass::BestEffort,
        n_threads,
        start: Nanos::ZERO,
        kind: WorkloadKind::BufferPool(cfg),
        prealloc: None,
        thp: false,
        stop: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_presets() {
        assert_eq!(memcached().rss_pages(), 13_056);
        assert_eq!(pagerank().rss_pages(), 10_752);
        assert_eq!(liblinear().rss_pages(), 17_664);
        assert_eq!(memcached().class, WorkloadClass::LatencyCritical);
        assert_eq!(liblinear().class, WorkloadClass::BestEffort);
        for spec in [memcached(), pagerank(), liblinear()] {
            assert_eq!(spec.n_threads, 8, "8 threads per app (§5.3)");
        }
    }

    #[test]
    fn builders_produce_generators_with_matching_rss() {
        for spec in [memcached(), pagerank(), liblinear()] {
            let g = spec.build();
            assert_eq!(g.rss_pages(), spec.rss_pages());
        }
    }

    #[test]
    fn staggered_start() {
        let w = pagerank().starting_at(Nanos::secs(50));
        assert_eq!(w.start, Nanos::secs(50));
        assert_eq!(w.stop, None);
        let w = w.stopping_at(Nanos::secs(120));
        assert_eq!(w.stop, Some(Nanos::secs(120)));
    }

    #[test]
    fn micro_spec() {
        let w = microbench("mb", MicroConfig::default(), 4);
        assert_eq!(w.n_threads, 4);
        assert_eq!(w.rss_pages(), 8_192);
    }

    #[test]
    fn spec_snapshot_roundtrips_every_kind() {
        use vulcan_json::Snapshot;
        let trace = {
            let mut g = Microbench::new(MicroConfig {
                rss_pages: 256,
                wss_pages: 64,
                ..Default::default()
            });
            Arc::new(Trace::record(&mut g, 2, 10, 7))
        };
        let specs = vec![
            memcached().starting_at(Nanos::secs(3)),
            pagerank().preallocated(TierKind::Slow),
            liblinear().stopping_at(Nanos::secs(99)),
            microbench("mb", MicroConfig::default(), 4).with_thp(),
            bufferpool("bp", BufferPoolConfig::default(), 4),
            replay("rp", trace, WorkloadClass::LatencyCritical),
        ];
        for spec in specs {
            let snap = spec.snapshot();
            let back = WorkloadSpec::restore(&snap).expect("restore");
            assert_eq!(back.snapshot(), snap, "snapshot(restore(c)) == c");
            assert_eq!(back.name, spec.name);
            assert_eq!(back.class, spec.class);
            assert_eq!(back.n_threads, spec.n_threads);
            assert_eq!(back.start, spec.start);
            assert_eq!(back.prealloc, spec.prealloc);
            assert_eq!(back.thp, spec.thp);
            assert_eq!(back.stop, spec.stop);
            assert_eq!(back.rss_pages(), spec.rss_pages());
        }
    }

    /// Every stateful generator must resume exactly where it left off: a
    /// fresh generator built from the restored spec plus
    /// `restore_state` produces the same access stream as the original
    /// continuing uninterrupted.
    #[test]
    fn generator_state_roundtrip_continues_the_access_stream() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        use vulcan_json::Snapshot;
        let trace = {
            let mut g = Microbench::new(MicroConfig {
                rss_pages: 256,
                wss_pages: 64,
                ..Default::default()
            });
            Arc::new(Trace::record(&mut g, 2, 10, 7))
        };
        let specs = vec![
            memcached(),
            pagerank(),
            liblinear(),
            microbench("mb", MicroConfig::default(), 4),
            bufferpool("bp", BufferPoolConfig::default(), 4),
            replay("rp", trace, WorkloadClass::BestEffort),
        ];
        for spec in specs {
            let mut rng = SmallRng::seed_from_u64(11);
            let mut gen = spec.build();
            let mut buf = Vec::new();
            // Warm up mid-phase and mid-cursor on several threads.
            for i in 0..700 {
                buf.clear();
                gen.next_op(i % spec.n_threads, &mut rng, &mut buf);
            }
            let state = gen.snapshot_state();
            let spec2 = WorkloadSpec::restore(&spec.snapshot()).expect("spec restore");
            let mut fresh = spec2.build();
            fresh
                .restore_state(&state)
                .unwrap_or_else(|e| panic!("{}: restore_state: {e}", spec.name));
            assert_eq!(
                fresh.snapshot_state(),
                state,
                "{}: snapshot_state(restore_state(s)) == s",
                spec.name
            );
            // Both must now produce identical streams from the same RNG.
            let rng_state = rng.state();
            let mut rng2 = SmallRng::from_state(rng_state);
            let mut buf2 = Vec::new();
            for i in 0..300 {
                let tid = i % spec.n_threads;
                buf.clear();
                buf2.clear();
                gen.next_op(tid, &mut rng, &mut buf);
                fresh.next_op(tid, &mut rng2, &mut buf2);
                assert_eq!(buf, buf2, "{}: op {i} diverged after restore", spec.name);
            }
        }
    }

    #[test]
    fn bufferpool_spec() {
        let w = bufferpool("bufpool", BufferPoolConfig::default(), 4).with_thp();
        assert_eq!(w.n_threads, 4);
        assert_eq!(w.rss_pages(), 12_288);
        assert_eq!(w.class, WorkloadClass::BestEffort);
        assert!(w.thp, "scan phases are THP-sensitive");
        // The spec's thread count overrides the config's.
        let g = w.build();
        assert_eq!(g.rss_pages(), w.rss_pages());
        assert!(!g.batchable());
    }
}
