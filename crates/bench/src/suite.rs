//! The declarative experiment harness: every simulation sweep in the
//! evaluation is a grid of independent [`ExperimentCell`]s.
//!
//! A cell is fully self-contained — policy factory, profiler factory,
//! machine, workload mix, quantum count and RNG seed — so cells can run
//! in any order on any number of threads and still produce identical
//! results. [`Experiment::run`] executes the grid on the workspace
//! thread pool and returns results in declaration order, which is what
//! keeps the JSON artifacts under `target/experiments/` byte-identical
//! across `--threads 1` and `--threads N`.
//!
//! Seed derivation: a grid maps trial `t` of a sweep with base seed `b`
//! to [`cell_seed`]`(b, t) = b + t`. Trials therefore use common random
//! numbers across policies (trial `t` sees the same workload randomness
//! under every policy), and the historical per-figure seeds are
//! preserved exactly (figure 10 has always run seeds `0..n_trials`).
//!
//! The figure binaries and the `vulcan-bench suite` driver share the
//! same grid builders ([`fig10_grid`], [`ablation_grid`], …) declared in
//! [`SUITE`]; the driver can replay any subset of them through one code
//! path, scaled down with [`SuiteOpts::quick`] for CI.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use rayon::prelude::*;
use vulcan::core::{VulcanConfig, VulcanPolicy};
use vulcan::migrate::{MechanismConfig, PrepStrategy};
use vulcan::prelude::*;
use vulcan::runtime::SystemState;

/// Builds a fresh policy instance for one cell.
pub type PolicyFactory = Arc<dyn Fn() -> Box<dyn TieringPolicy> + Send + Sync>;

/// Builds a fresh profiler for one workload of one cell. Returning
/// [`AnyProfiler`] keeps the runtime's enum-dispatch fast path; custom
/// profilers ride along as `AnyProfiler::Custom`.
pub type ProfilerFactory = Arc<dyn Fn(&WorkloadSpec) -> AnyProfiler + Send + Sync>;

/// Derive the seed of trial `trial` in a sweep with base seed `base`.
///
/// The scheme is deliberately the identity offset: trials share random
/// streams across policies (common random numbers) and the pre-harness
/// artifacts — which ran seeds `base..base + n_trials` — are reproduced
/// bit-for-bit.
pub fn cell_seed(base: u64, trial: u64) -> u64 {
    base + trial
}

/// One self-contained simulation: everything [`SimRunner`] needs, as
/// data. Cells are `Sync`, carry no results, and depend on nothing but
/// their own fields — the properties that make a grid order- and
/// thread-count-independent.
#[derive(Clone)]
pub struct ExperimentCell {
    /// Display label (`tpp/s0`, `no-cbfrp`, …) for progress lines and
    /// the suite artifact.
    pub label: String,
    /// Policy constructor.
    pub policy: PolicyFactory,
    /// Profiler constructor (per workload).
    pub profiler: ProfilerFactory,
    /// The simulated machine.
    pub machine: MachineSpec,
    /// The co-located workload mix.
    pub specs: Vec<WorkloadSpec>,
    /// Quanta to simulate.
    pub quanta: u64,
    /// RNG seed (see [`cell_seed`]).
    pub seed: u64,
    /// Override of [`SimConfig::quantum_active`] (`None` = default).
    pub quantum_active: Option<Nanos>,
    /// Per-thread page-table replication (ablation switch).
    pub replication: bool,
    /// Fault-injection rates (ISSUE 5; all-zero = disabled, exact no-op).
    pub faults: vulcan::sim::FaultConfig,
    /// Intra-cell shard count for the execute phase (ISSUE 7). `1` is
    /// the sequential sweep; results are byte-identical for any value.
    pub shards: usize,
}

impl ExperimentCell {
    /// A cell for a registered [`PolicyKind`] on the paper testbed with
    /// the policy's native profiler.
    pub fn new(kind: PolicyKind, specs: Vec<WorkloadSpec>, quanta: u64, seed: u64) -> Self {
        ExperimentCell::custom(
            format!("{kind}/s{seed}"),
            Arc::new(move || kind.make()),
            Arc::new(move |_| kind.profiler()),
            specs,
            quanta,
            seed,
        )
    }

    /// A cell with explicit policy and profiler factories (ablations,
    /// custom policies such as figure 4's promoter).
    pub fn custom(
        label: impl Into<String>,
        policy: PolicyFactory,
        profiler: ProfilerFactory,
        specs: Vec<WorkloadSpec>,
        quanta: u64,
        seed: u64,
    ) -> Self {
        ExperimentCell {
            label: label.into(),
            policy,
            profiler,
            machine: MachineSpec::paper_testbed(),
            specs,
            quanta,
            seed,
            quantum_active: None,
            replication: true,
            faults: vulcan::sim::FaultConfig::default(),
            shards: 1,
        }
    }

    /// Replace the simulated machine.
    pub fn on_machine(mut self, machine: MachineSpec) -> Self {
        self.machine = machine;
        self
    }

    /// Override the active time per quantum.
    pub fn with_quantum_active(mut self, q: Nanos) -> Self {
        self.quantum_active = Some(q);
        self
    }

    /// Toggle per-thread page-table replication.
    pub fn with_replication(mut self, on: bool) -> Self {
        self.replication = on;
        self
    }

    /// Inject faults from `cfg`'s seeded schedule (the chaos sweeps).
    pub fn with_faults(mut self, faults: vulcan::sim::FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Shard the execute phase across `n` core-disjoint sweeps.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    fn config(&self, n_quanta: u64) -> SimConfig {
        let mut cfg = SimConfig {
            n_quanta,
            seed: self.seed,
            replication: self.replication,
            faults: self.faults.clone(),
            shards: self.shards,
            ..Default::default()
        };
        if let Some(q) = self.quantum_active {
            cfg.quantum_active = q;
        }
        cfg
    }

    fn build(&self, n_quanta: u64) -> SimRunner {
        let profiler = Arc::clone(&self.profiler);
        SimRunner::builder()
            .machine(self.machine.clone())
            .workloads(self.specs.clone())
            .profiler_factory(move |w| profiler(w))
            .policy((self.policy)())
            .config(self.config(n_quanta))
            .build()
    }

    /// A runner configured for `n_quanta: 0`, for binaries that step
    /// quanta manually (the THP study inspects TLB state mid-run).
    pub fn paused_runner(&self) -> SimRunner {
        self.build(0)
    }

    /// Run the cell to completion.
    pub fn run(&self) -> RunResult {
        self.build(self.quanta).run()
    }
}

/// A named grid of cells.
pub struct Experiment {
    /// Grid name (`fig10`, `ablation`, …).
    pub name: String,
    /// The cells, in declaration order.
    pub cells: Vec<ExperimentCell>,
}

impl Experiment {
    /// An empty grid.
    pub fn new(name: impl Into<String>) -> Self {
        Experiment {
            name: name.into(),
            cells: Vec::new(),
        }
    }

    /// Append a cell.
    pub fn push(&mut self, cell: ExperimentCell) {
        self.cells.push(cell);
    }

    /// Run every cell on the workspace thread pool, reporting progress
    /// on stderr. Results come back in declaration order regardless of
    /// which thread finished which cell first.
    pub fn run(&self) -> Vec<RunResult> {
        let total = self.cells.len();
        let done = AtomicUsize::new(0);
        let name = self.name.as_str();
        self.cells
            .par_iter()
            .map(|cell| {
                let res = cell.run();
                let k = done.fetch_add(1, Ordering::Relaxed) + 1;
                eprintln!("[{name}] {k}/{total} {}", cell.label);
                res
            })
            .collect()
    }
}

/// Scaling knobs shared by the figure binaries (full fidelity) and the
/// `vulcan-bench suite` driver (`--quick` for CI).
#[derive(Clone, Copy, Debug)]
pub struct SuiteOpts {
    /// Trials per sweep point.
    pub trials: u64,
    /// Cap on quanta per cell (`None` = paper-fidelity durations).
    pub quanta_cap: Option<u64>,
}

impl SuiteOpts {
    /// Paper-fidelity grids: `VULCAN_TRIALS` trials, full durations.
    /// The figure binaries always use this, so their artifacts match the
    /// historical output byte for byte.
    pub fn full() -> Self {
        SuiteOpts {
            trials: crate::trials(),
            quanta_cap: None,
        }
    }

    /// CI-scale grids: one trial, quanta capped at 20.
    pub fn quick() -> Self {
        SuiteOpts {
            trials: 1,
            quanta_cap: Some(20),
        }
    }

    fn quanta(&self, full: u64) -> u64 {
        match self.quanta_cap {
            Some(cap) => full.min(cap),
            None => full,
        }
    }
}

/// Figure 1: Memtis on Memcached/Liblinear, solo and co-located.
pub fn fig1_grid(o: &SuiteOpts) -> Experiment {
    let mut exp = Experiment::new("fig1");
    let quanta = o.quanta(60);
    for (label, specs) in [
        ("solo_mc", vec![memcached()]),
        ("solo_lib", vec![liblinear()]),
        ("co", vec![memcached(), liblinear()]),
    ] {
        let mut cell = ExperimentCell::new(PolicyKind::Memtis, specs, quanta, 1);
        cell.label = label.into();
        exp.push(cell);
    }
    exp
}

/// Figure 4's read-ratio sweep points.
pub const FIG4_RATIOS: [f64; 6] = [0.0, 0.25, 0.5, 0.75, 0.9, 1.0];

/// Figure 4's promotion policy: promote every sufficiently hot slow
/// page through one copy engine or the other.
pub struct Promoter {
    /// `true` = synchronous copies (stall, always land); `false` =
    /// asynchronous transactional copies (no stalls, dirty aborts).
    pub sync: bool,
}

impl TieringPolicy for Promoter {
    fn name(&self) -> &'static str {
        if self.sync {
            "sync"
        } else {
            "async"
        }
    }

    fn on_quantum(&mut self, state: &mut SystemState) {
        let mech = MechanismConfig::linux_baseline();
        for w in 0..state.n_workloads() {
            state.poll_async(w, &mech);
            // Watermark demotion keeps room for the drifting hot set
            // (off the critical path for both variants).
            if state.fast_free() < 128 {
                let victims: Vec<Vpn> = {
                    let ws = &state.workloads[w];
                    let mut cold: Vec<(Vpn, f64)> = ws
                        .process
                        .space
                        .mapped_vpns()
                        .filter(|&v| ws.process.space.pte(v).tier() == Some(TierKind::Fast))
                        .map(|v| (v, ws.heat().get(v).heat))
                        .collect();
                    cold.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
                    cold.into_iter().take(256).map(|(v, _)| v).collect()
                };
                state.migrate_background(w, &victims, TierKind::Slow, &mech);
            }
            let hot: Vec<Vpn> = {
                let ws = &state.workloads[w];
                let mut hot: Vec<(Vpn, f64)> = ws
                    .heat()
                    .iter()
                    .filter(|(vpn, s)| {
                        s.heat >= 1.0
                            && ws.process.space.pte(*vpn).tier() == Some(TierKind::Slow)
                            && !ws.async_migrator.is_inflight(*vpn)
                    })
                    .map(|(v, s)| (v, s.heat))
                    .collect();
                // The heat map iterates in hash order; the copy engines
                // are order-sensitive (capacity, dirty aborts), so pick
                // a deterministic order: hottest first, VPN tie-break.
                hot.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
                hot.into_iter().map(|(v, _)| v).collect()
            };
            if hot.is_empty() {
                continue;
            }
            if self.sync {
                state.migrate_sync(w, &hot, TierKind::Fast, &mech);
            } else {
                state.migrate_async(w, &hot, TierKind::Fast);
            }
        }
    }
}

/// Figure 4: sync vs async promotion across read ratios. Cell order is
/// ratio-major, then trial, then `[sync, async]`.
pub fn fig4_grid(o: &SuiteOpts) -> Experiment {
    let mut exp = Experiment::new("fig4");
    let quanta = o.quanta(20);
    for &ratio in &FIG4_RATIOS {
        for trial in 0..o.trials {
            let seed = cell_seed(0, trial);
            for sync in [true, false] {
                let spec = microbench(
                    "mb",
                    MicroConfig {
                        rss_pages: 2_048,
                        wss_pages: 64,
                        read_ratio: ratio,
                        skew: 1.35,   // heavy head: a few pages carry most of the load
                        wss_drift: 1, // the hot set keeps moving: sustained promotion
                        ..Default::default()
                    },
                    2,
                )
                .preallocated(TierKind::Slow);
                let engine = if sync { "sync" } else { "async" };
                exp.push(
                    ExperimentCell::custom(
                        format!("r{ratio:.2}/{engine}/s{seed}"),
                        Arc::new(move || Box::new(Promoter { sync })),
                        Arc::new(|_| PebsProfiler::new(4).into()),
                        vec![spec],
                        quanta,
                        seed,
                    )
                    .on_machine(MachineSpec::small(1024, 4096, 32))
                    .with_quantum_active(Nanos::millis(1)),
                );
            }
        }
    }
    exp
}

/// Figure 8: the four systems across WSS scenarios. Cell order is
/// scenario-major, then policy, then trial.
pub fn fig8_grid(o: &SuiteOpts) -> Experiment {
    let mut exp = Experiment::new("fig8");
    let quanta = o.quanta(40);
    for scenario in WssScenario::ALL {
        for kind in PolicyKind::PAPER {
            for trial in 0..o.trials {
                let seed = cell_seed(0, trial);
                let spec = microbench("mb", MicroConfig::fig8_scenario(scenario), 8)
                    .preallocated(TierKind::Slow);
                let mut cell = ExperimentCell::new(kind, vec![spec], quanta, seed);
                cell.label = format!("{}/{kind}/s{seed}", scenario.label());
                exp.push(cell);
            }
        }
    }
    exp
}

/// Figure 9: a single Vulcan run of the §5.3 co-location.
pub fn fig9_grid(o: &SuiteOpts) -> Experiment {
    let mut exp = Experiment::new("fig9");
    exp.push(ExperimentCell::new(
        PolicyKind::Vulcan,
        crate::colocation_specs(),
        o.quanta(200),
        1,
    ));
    exp
}

/// Figure 10: the four systems × trials on the §5.3 co-location. Cell
/// order is policy-major, then trial; seeds are `0..trials`.
pub fn fig10_grid(o: &SuiteOpts) -> Experiment {
    let mut exp = Experiment::new("fig10");
    let quanta = o.quanta(200);
    for kind in PolicyKind::PAPER {
        for trial in 0..o.trials {
            exp.push(ExperimentCell::new(
                kind,
                crate::colocation_specs(),
                quanta,
                cell_seed(0, trial),
            ));
        }
    }
    exp
}

/// Extended comparison: all seven registered systems, one run each.
pub fn extended_grid(o: &SuiteOpts) -> Experiment {
    let mut exp = Experiment::new("extended_compare");
    let quanta = o.quanta(200);
    for kind in PolicyKind::ALL {
        exp.push(ExperimentCell::new(
            kind,
            crate::colocation_specs(),
            quanta,
            42,
        ));
    }
    exp
}

fn ablation_variants() -> Vec<(&'static str, VulcanConfig, bool)> {
    let base = VulcanConfig::default();
    vec![
        ("full", base.clone(), true),
        (
            "no-cbfrp",
            VulcanConfig {
                cbfrp: false,
                ..base.clone()
            },
            true,
        ),
        (
            "no-bias",
            VulcanConfig {
                biased_queues: false,
                ..base.clone()
            },
            true,
        ),
        (
            "no-replication",
            VulcanConfig {
                mechanism: MechanismConfig {
                    scope: ShootdownScope::ProcessWide,
                    ..MechanismConfig::vulcan()
                },
                ..base.clone()
            },
            false,
        ),
        (
            "no-shadowing",
            VulcanConfig {
                mechanism: MechanismConfig {
                    shadowing: false,
                    ..MechanismConfig::vulcan()
                },
                ..base.clone()
            },
            true,
        ),
        (
            "linux-mechanism",
            VulcanConfig {
                mechanism: MechanismConfig {
                    prep: PrepStrategy::BaselineGlobal,
                    scope: ShootdownScope::ProcessWide,
                    shadowing: false,
                    ..MechanismConfig::vulcan()
                },
                ..base
            },
            false,
        ),
    ]
}

/// Component ablation: Vulcan with one innovation disabled at a time.
pub fn ablation_grid(o: &SuiteOpts) -> Experiment {
    let mut exp = Experiment::new("ablation");
    let quanta = o.quanta(200);
    for (name, cfg, replication) in ablation_variants() {
        exp.push(
            ExperimentCell::custom(
                name,
                Arc::new(move || Box::new(VulcanPolicy::with_config(cfg.clone()))),
                Arc::new(|_| HybridProfiler::vulcan_default().into()),
                crate::colocation_specs(),
                quanta,
                42,
            )
            .with_replication(replication),
        );
    }
    exp
}

/// The bias study's workloads, in grid order.
pub const BIAS_WORKLOADS: [&str; 2] = ["pagerank", "write-heavy"];

/// The bias study's policy lineage, in grid order.
pub const BIAS_VARIANTS: [&str; 3] = [
    "mtm (r/w split only)",
    "vulcan no-bias (all async)",
    "vulcan (table 1)",
];

fn bias_workload(which: &str) -> WorkloadSpec {
    match which {
        "pagerank" => pagerank(),
        // Write-heavy drifting hot set: the worst case for async-only
        // promotion (every transaction lands in the dirty window).
        "write-heavy" => microbench(
            "write-heavy",
            MicroConfig {
                rss_pages: 8_192,
                wss_pages: 128,
                read_ratio: 0.1,
                skew: 1.2,
                wss_drift: 1,
                ..Default::default()
            },
            8,
        )
        .preallocated(TierKind::Slow),
        _ => unreachable!(),
    }
}

fn bias_policy(variant: &str) -> Box<dyn TieringPolicy> {
    match variant {
        "mtm (r/w split only)" => Box::new(Mtm::new()),
        "vulcan no-bias (all async)" => Box::new(VulcanPolicy::with_config(VulcanConfig {
            biased_queues: false,
            ..Default::default()
        })),
        "vulcan (table 1)" => Box::new(VulcanPolicy::new()),
        _ => unreachable!(),
    }
}

/// Biased-policy lineage (§3.5): MTM → no-bias → Table 1, on two
/// workloads with different sharing structure. Cell order is
/// workload-major, variant-minor.
pub fn bias_grid(o: &SuiteOpts) -> Experiment {
    let mut exp = Experiment::new("bias_study");
    let quanta = o.quanta(40);
    for which in BIAS_WORKLOADS {
        for variant in BIAS_VARIANTS {
            // Isolate the *policy*: same PEBS profiler for every variant.
            exp.push(
                ExperimentCell::custom(
                    format!("{which}/{variant}"),
                    Arc::new(move || bias_policy(variant)),
                    Arc::new(|_| PebsProfiler::new(16).into()),
                    vec![bias_workload(which)],
                    quanta,
                    42,
                )
                .on_machine(MachineSpec::small(4_096, 32_768, 16))
                .with_replication(variant != BIAS_VARIANTS[0]),
            );
        }
    }
    exp
}

/// The THP study's working-set sizes (2 MiB regions), in grid order.
pub const THP_WSS_REGIONS: [u64; 3] = [4, 8, 16];

/// THP study: TLB reach and split-on-promotion under the Vulcan policy.
/// Cell order is WSS-major, then `[4 KiB, THP]`.
pub fn thp_grid(o: &SuiteOpts) -> Experiment {
    use vulcan::sim::HUGE_PAGE_PAGES;
    let mut exp = Experiment::new("thp");
    let quanta = o.quanta(15);
    for wss_regions in THP_WSS_REGIONS {
        for thp in [false, true] {
            let spec = {
                let s = microbench(
                    "mb",
                    MicroConfig {
                        rss_pages: 16 * HUGE_PAGE_PAGES as u64,
                        wss_pages: wss_regions * HUGE_PAGE_PAGES as u64,
                        skew: 0.6,
                        ..Default::default()
                    },
                    8,
                );
                if thp {
                    s.with_thp()
                } else {
                    s
                }
            };
            let mut cell = ExperimentCell::new(PolicyKind::Vulcan, vec![spec], quanta, 1);
            cell.label = format!("wss{wss_regions}/{}", if thp { "thp" } else { "base" });
            exp.push(cell);
        }
    }
    exp
}

/// One target the `vulcan-bench suite` driver can run.
pub struct SuiteEntry {
    /// Target name (matches the figure binary).
    pub name: &'static str,
    /// Grid builder; `None` marks an analytic target with no simulation
    /// grid (its binary derives the figure from the cost model alone).
    pub build: Option<fn(&SuiteOpts) -> Experiment>,
}

/// Every figure/table target, in paper order. Simulation targets carry
/// their grid builder; analytic ones are listed so `suite --list` is a
/// complete index.
pub const SUITE: [SuiteEntry; 14] = [
    SuiteEntry {
        name: "fig1",
        build: Some(fig1_grid),
    },
    SuiteEntry {
        name: "fig2",
        build: None,
    },
    SuiteEntry {
        name: "fig3",
        build: None,
    },
    SuiteEntry {
        name: "fig4",
        build: Some(fig4_grid),
    },
    SuiteEntry {
        name: "fig7",
        build: None,
    },
    SuiteEntry {
        name: "fig8",
        build: Some(fig8_grid),
    },
    SuiteEntry {
        name: "fig9",
        build: Some(fig9_grid),
    },
    SuiteEntry {
        name: "fig10",
        build: Some(fig10_grid),
    },
    SuiteEntry {
        name: "table1",
        build: None,
    },
    SuiteEntry {
        name: "table2",
        build: None,
    },
    SuiteEntry {
        name: "ablation",
        build: Some(ablation_grid),
    },
    SuiteEntry {
        name: "bias_study",
        build: Some(bias_grid),
    },
    SuiteEntry {
        name: "thp",
        build: Some(thp_grid),
    },
    SuiteEntry {
        name: "extended_compare",
        build: Some(extended_grid),
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_seed_is_identity_offset() {
        assert_eq!(cell_seed(0, 3), 3);
        assert_eq!(cell_seed(100, 7), 107);
    }

    #[test]
    fn quick_opts_scale_grids_down() {
        let full = fig10_grid(&SuiteOpts {
            trials: 2,
            quanta_cap: None,
        });
        let quick = fig10_grid(&SuiteOpts::quick());
        assert_eq!(full.cells.len(), 8);
        assert_eq!(quick.cells.len(), 4);
        assert!(quick.cells.iter().all(|c| c.quanta <= 20));
        assert_eq!(full.cells[0].quanta, 200);
    }

    #[test]
    fn fig10_grid_is_policy_major_with_trial_seeds() {
        let o = SuiteOpts {
            trials: 2,
            quanta_cap: None,
        };
        let exp = fig10_grid(&o);
        let labels: Vec<&str> = exp.cells.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "tpp/s0",
                "tpp/s1",
                "memtis/s0",
                "memtis/s1",
                "nomad/s0",
                "nomad/s1",
                "vulcan/s0",
                "vulcan/s1"
            ]
        );
        assert_eq!(exp.cells[1].seed, 1);
    }

    #[test]
    fn suite_registry_covers_all_fourteen_targets() {
        assert_eq!(SUITE.len(), 14);
        let sim = SUITE.iter().filter(|e| e.build.is_some()).count();
        assert_eq!(sim, 9);
        // Each registered sim target builds a non-empty quick grid.
        for entry in SUITE.iter() {
            if let Some(build) = entry.build {
                let exp = build(&SuiteOpts::quick());
                assert!(!exp.cells.is_empty(), "{} grid is empty", entry.name);
                assert_eq!(exp.name, entry.name);
            }
        }
    }

    #[test]
    fn tiny_grid_runs_in_declaration_order() {
        let mut exp = Experiment::new("test");
        for seed in [5u64, 3, 9] {
            exp.push(ExperimentCell::new(
                PolicyKind::Vulcan,
                vec![microbench(
                    "mb",
                    MicroConfig {
                        rss_pages: 128,
                        wss_pages: 32,
                        ..Default::default()
                    },
                    2,
                )],
                2,
                seed,
            ));
        }
        let results = exp.run();
        assert_eq!(results.len(), 3);
        // Every cell ran the vulcan policy and produced a finished run.
        for res in &results {
            assert_eq!(res.policy, "vulcan");
            assert!(res.workload("mb").ops_total > 0);
        }
        // Declaration order is preserved: rerunning cell 1 alone gives
        // the same result object as slot 1 of the grid run.
        let solo = exp.cells[1].run();
        assert_eq!(solo.cfi, results[1].cfi);
        assert_eq!(
            solo.workload("mb").ops_total,
            results[1].workload("mb").ops_total
        );
    }
}
