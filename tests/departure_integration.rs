//! Integration test: workload departure.
//!
//! GFMC is "dynamically adjusting based on n" (§3.3) — both directions.
//! When a workload terminates, every frame it held must return to the
//! allocators, its TLB entries must vanish, and the survivors' GPT and
//! allocations must expand into the freed capacity.

use vulcan::prelude::*;

fn specs() -> Vec<WorkloadSpec> {
    vec![
        microbench(
            "stayer",
            MicroConfig {
                rss_pages: 2_048,
                wss_pages: 1_024,
                ..Default::default()
            },
            4,
        )
        .preallocated(TierKind::Slow),
        microbench(
            "leaver",
            MicroConfig {
                rss_pages: 2_048,
                wss_pages: 1_024,
                ..Default::default()
            },
            4,
        )
        .preallocated(TierKind::Slow)
        .stopping_at(Nanos::secs(12)),
    ]
}

fn runner() -> vulcan::runtime::SimRunner {
    vulcan::runtime::SimRunner::builder()
        .machine(MachineSpec::small(1_024, 8_192, 16))
        .workloads(specs())
        .profiler_factory(|_| Box::new(HybridProfiler::vulcan_default()))
        .policy(Box::new(VulcanPolicy::new()))
        .config(SimConfig {
            quantum_active: Nanos::millis(1),
            n_quanta: 0,
            ..Default::default()
        })
        .build()
}

#[test]
fn departure_frees_every_frame() {
    let mut r = runner();
    for _ in 0..25 {
        r.run_quantum();
    }
    let leaver = &r.state.workloads[1];
    assert!(leaver.departed);
    assert!(!leaver.started);
    assert_eq!(leaver.rss_pages(), 0, "all pages unmapped");
    assert_eq!(leaver.stats.fast_used, 0);
    assert_eq!(leaver.async_migrator.inflight(), 0);
    assert!(leaver.shadows.is_empty());

    // Conservation: machine frames = stayer's mapped pages + its shadows
    // + its in-flight destination reservations.
    let stayer = &r.state.workloads[0];
    let used = r.state.machine.allocator(TierKind::Fast).used_frames()
        + r.state.machine.allocator(TierKind::Slow).used_frames();
    let expected =
        stayer.rss_pages() + stayer.shadows.len() as u64 + stayer.async_migrator.inflight() as u64;
    assert_eq!(used, expected, "no leaked frames after departure");
}

#[test]
fn survivor_expands_into_freed_capacity() {
    let mut r = runner();
    for _ in 0..10 {
        r.run_quantum();
    }
    let before = r.state.workloads[0].stats.fast_used;
    for _ in 0..20 {
        r.run_quantum();
    }
    let after = r.state.workloads[0].stats.fast_used;
    assert!(
        after > before + 128,
        "GFMC doubled after the departure: {before} -> {after}"
    );
}

#[test]
fn departed_workload_stops_executing() {
    let mut r = runner();
    for _ in 0..12 {
        r.run_quantum();
    }
    let ops_at_departure = r.state.workloads[1].stats.ops_total;
    for _ in 0..10 {
        r.run_quantum();
    }
    assert_eq!(
        r.state.workloads[1].stats.ops_total, ops_at_departure,
        "no ops after departure"
    );
    assert!(
        r.state.workloads[0].stats.ops_total > 0,
        "survivor keeps running"
    );
}

#[test]
fn departure_is_idempotent_and_tlb_clean() {
    let mut r = runner();
    for _ in 0..15 {
        r.run_quantum();
    }
    let asid = r.state.workloads[1].process.asid;
    // Manual second teardown must be a no-op.
    r.state.teardown(1);
    for c in 0..16u16 {
        let tlb = r.state.tlbs.core(vulcan::sim::CoreId(c));
        assert!(!tlb.lookup_huge(asid, Vpn(0)));
        assert_eq!(tlb.lookup(asid, Vpn(0)), None, "no stale entries");
    }
}
