//! Migration engines: synchronous and asynchronous (transactional).
//!
//! * [`migrate_sync`] blocks the caller for the full five-phase mechanism
//!   — the behaviour of TPP's promotion path (§2.1). The returned phase
//!   costs are charged to the accessing threads by the runtime.
//! * [`AsyncMigrator`] implements transactional asynchronous migration in
//!   the style of Nomad (§2.1): the copy proceeds in the background while
//!   the application keeps accessing the source page; if the page is
//!   dirtied during the copy window the transaction retries, and after
//!   `max_async_retries` failures it aborts (Observation #4's
//!   write-intensive pathology).

use crate::phases::{batch_phases_without_shootdown, PhaseCycles, PrepStrategy};
use crate::shadow::ShadowRegistry;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vulcan_sim::{Cycles, FrameId, Machine, Nanos, TierKind};
use vulcan_vm::{shootdown, Process, ShootdownMode, ShootdownScope, TlbArray, Vpn};

/// Configuration of the migration mechanism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MechanismConfig {
    /// Preparation strategy (global drain vs per-workload).
    pub prep: PrepStrategy,
    /// Shootdown target selection (process-wide vs ownership-targeted).
    pub scope: ShootdownScope,
    /// Shootdown cost regime.
    pub sd_mode: ShootdownMode,
    /// Retain slow-tier shadows of promoted pages (Nomad-style).
    pub shadowing: bool,
    /// Dirty-retry budget for asynchronous transactions.
    pub max_async_retries: u32,
}

impl MechanismConfig {
    /// The Linux/TPP baseline mechanism: global preparation, process-wide
    /// shootdowns, no shadowing.
    pub fn linux_baseline() -> Self {
        MechanismConfig {
            prep: PrepStrategy::BaselineGlobal,
            scope: ShootdownScope::ProcessWide,
            sd_mode: ShootdownMode::Batched,
            shadowing: false,
            max_async_retries: 3,
        }
    }

    /// Vulcan's mechanism: per-workload preparation, ownership-targeted
    /// shootdowns, shadowing enabled (§3.2, §3.4, §3.5).
    pub fn vulcan() -> Self {
        MechanismConfig {
            prep: PrepStrategy::Optimized,
            scope: ShootdownScope::Targeted,
            sd_mode: ShootdownMode::Batched,
            shadowing: true,
            max_async_retries: 3,
        }
    }
}

/// Result of a synchronous batch migration.
#[derive(Clone, Debug, Default)]
pub struct SyncOutcome {
    /// Pages successfully moved to the destination tier.
    pub moved: Vec<Vpn>,
    /// Pages skipped (unmapped, already in destination, or out of frames).
    pub skipped: Vec<Vpn>,
    /// Demotions served by a shadow remap (no copy performed).
    pub remap_only: u64,
    /// Cycle cost by phase, charged to the caller.
    pub phases: PhaseCycles,
}

impl SyncOutcome {
    /// Total cycles of the batch.
    pub fn total_cycles(&self) -> Cycles {
        self.phases.total()
    }
}

/// Synchronously migrate `pages` of `process` to `dest`.
///
/// Huge-page-backed pages are split before migration (§3.5: Vulcan splits
/// THPs into base pages on promotion, following Memtis).
pub fn migrate_sync(
    process: &mut Process,
    machine: &mut Machine,
    tlbs: &mut TlbArray,
    shadows: &mut ShadowRegistry,
    pages: &[Vpn],
    dest: TierKind,
    cfg: &MechanismConfig,
) -> SyncOutcome {
    let mut out = SyncOutcome::default();

    let mut seen = std::collections::HashSet::new();
    let eligible: Vec<Vpn> = pages
        .iter()
        .copied()
        .filter(|&vpn| {
            if !seen.insert(vpn.0) {
                return false; // duplicate within the batch
            }
            let pte = process.space.pte(vpn);
            let ok = pte.present() && pte.tier() != Some(dest);
            if !ok {
                out.skipped.push(vpn);
            }
            ok
        })
        .collect();
    if eligible.is_empty() {
        return out;
    }

    split_and_flush_huge(process, machine, tlbs, &eligible);

    // Shootdown must be planned before unmapping: targeting reads the
    // ownership bits of the live PTEs.
    let plan = shootdown::plan(process, &machine.topology, &eligible, cfg.scope);
    let costs = machine.spec().migration_costs.clone();
    let sd_cost = shootdown::execute(&plan, process, tlbs, &costs, cfg.sd_mode);

    let mut copied = 0u64;
    for &vpn in &eligible {
        let old = process.space.unmap(vpn).expect("eligibility checked");
        let old_frame = old.frame().expect("present PTE has a frame");

        // Shadow fast path: demoting a clean page that still has its
        // slow-tier shadow is a pure remap.
        if dest == TierKind::Slow && cfg.shadowing && !old.dirty() {
            if let Some(shadow_frame) = shadows.take(vpn) {
                machine.free(old_frame);
                process.space.set_pte(vpn, old.with_frame(shadow_frame));
                out.remap_only += 1;
                out.moved.push(vpn);
                continue;
            }
        }

        let Ok(new_frame) = machine.alloc(dest) else {
            // Destination full: restore the original mapping.
            process.space.set_pte(vpn, old);
            out.skipped.push(vpn);
            continue;
        };

        machine.record_page_copy(old_frame.tier, dest);
        copied += 1;

        if dest == TierKind::Fast && cfg.shadowing && old_frame.tier == TierKind::Slow {
            // Keep the slow frame as a shadow of the promoted page.
            if let Some(stale) = shadows.retain(vpn, old_frame) {
                machine.free(stale);
            }
        } else {
            if cfg.shadowing {
                // Demotion with copy: any retained shadow is now stale.
                if let Some(stale) = shadows.invalidate(vpn) {
                    machine.free(stale);
                }
            }
            machine.free(old_frame);
        }

        // Content is in sync after the copy: clear the dirty bit so the
        // shadow stays valid until the next write.
        process
            .space
            .set_pte(vpn, old.with_frame(new_frame).clear_dirty());
        out.moved.push(vpn);
    }

    let mut phases =
        batch_phases_without_shootdown(&costs, cfg.prep, machine.topology.n_cores(), copied);
    // Unmap/remap were attempted for every eligible page (restores included).
    phases.unmap = Cycles(costs.unmap.0 * eligible.len() as u64);
    phases.remap = Cycles(costs.remap.0 * eligible.len() as u64);
    phases.shootdown = sd_cost;
    if copied == 0 {
        phases.copy = Cycles::ZERO;
    }
    out.phases = phases;
    out
}

/// Split any THP regions covering `pages` and drop their 2 MiB TLB
/// entries on every core running the process (a real THP split must
/// flush the PMD-level translation before base-page PTEs become
/// authoritative).
fn split_and_flush_huge(
    process: &mut Process,
    machine: &Machine,
    tlbs: &mut TlbArray,
    pages: &[Vpn],
) {
    let mut cores = None;
    for &vpn in pages {
        if process.space.split_huge(vpn) {
            let cores = cores.get_or_insert_with(|| {
                machine
                    .topology
                    .cores_of(process.sim_threads().iter().copied())
            });
            tlbs.invalidate_huge_on(cores.iter().copied(), process.asid, vpn);
        }
    }
}

/// Statistics accumulated by an [`AsyncMigrator`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AsyncStats {
    /// Transactions started.
    pub started: u64,
    /// Transactions committed (page moved).
    pub committed: u64,
    /// Dirty retries performed.
    pub retried: u64,
    /// Transactions aborted after exhausting retries.
    pub aborted: u64,
}

#[derive(Clone, Copy, Debug)]
struct Txn {
    vpn: Vpn,
    dest: TierKind,
    dest_frame: FrameId,
    completes: Nanos,
    retries: u32,
}

/// Result of one [`AsyncMigrator::poll`].
#[derive(Clone, Debug, Default)]
pub struct AsyncPoll {
    /// Pages whose transactions committed.
    pub committed: Vec<Vpn>,
    /// Pages whose transactions aborted.
    pub aborted: Vec<Vpn>,
    /// Background cycles consumed by commits (charged to the migration
    /// thread, not the application — the point of async migration).
    pub background: Cycles,
}

/// Transactional asynchronous migrator (Nomad-style, §2.1).
///
/// The dirty check is statistical. The simulation quantum (milliseconds)
/// is far coarser than a real copy window (microseconds): reading the
/// PTE dirty bit literally would either retry every warm page forever
/// (poll after execution) or never observe a write at all (poll before
/// execution). Instead, each completing transaction is considered
/// dirtied with the probability that a write landed **inside its copy
/// window**, which the caller estimates from the page's observed write
/// rate (`dirty_prob` in [`poll`](Self::poll)).
#[derive(Clone, Debug)]
pub struct AsyncMigrator {
    inflight: Vec<Txn>,
    rng: SmallRng,
    /// Lifetime statistics.
    pub stats: AsyncStats,
}

impl Default for AsyncMigrator {
    fn default() -> Self {
        Self::new()
    }
}

impl AsyncMigrator {
    /// A migrator with no in-flight transactions.
    pub fn new() -> Self {
        Self::with_seed(0)
    }

    /// A migrator with a specific RNG seed (trial variation).
    pub fn with_seed(seed: u64) -> Self {
        AsyncMigrator {
            inflight: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            stats: AsyncStats::default(),
        }
    }

    /// Number of in-flight transactions.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Whether `vpn` has an in-flight transaction.
    pub fn is_inflight(&self, vpn: Vpn) -> bool {
        self.inflight.iter().any(|t| t.vpn == vpn)
    }

    /// Begin transactions moving `pages` to `dest`. The copy runs in the
    /// background; the application continues to access the source frame.
    /// Returns the number of transactions actually started.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        &mut self,
        process: &mut Process,
        machine: &mut Machine,
        tlbs: &mut TlbArray,
        pages: &[Vpn],
        dest: TierKind,
        now: Nanos,
    ) -> usize {
        let copy_time = machine.spec().migration_costs.copy_single.to_nanos();
        let mut started = 0;
        for &vpn in pages {
            let pte = process.space.pte(vpn);
            if !pte.present() || pte.tier() == Some(dest) || self.is_inflight(vpn) {
                continue;
            }
            let Ok(dest_frame) = machine.alloc(dest) else {
                break; // destination full; later pages will not fit either
            };
            split_and_flush_huge(process, machine, tlbs, &[vpn]);
            // Snapshot: clear D so a write during the window is detectable.
            process.space.set_pte(vpn, pte.clear_dirty());
            machine.record_page_copy(pte.tier().expect("present"), dest);
            self.inflight.push(Txn {
                vpn,
                dest,
                dest_frame,
                completes: now + copy_time,
                retries: 0,
            });
            started += 1;
        }
        self.stats.started += started as u64;
        started
    }

    /// Drive transactions whose copy window has elapsed at `now`:
    /// commit clean pages, retry dirty ones, abort beyond the budget.
    ///
    /// `dirty_prob(vpn)` is the probability that the page was written
    /// within one copy window (see the type-level docs); pass `|_| 1.0`
    /// to force retries, `|_| 0.0` for always-clean commits.
    #[allow(clippy::too_many_arguments)]
    pub fn poll(
        &mut self,
        process: &mut Process,
        machine: &mut Machine,
        tlbs: &mut TlbArray,
        shadows: &mut ShadowRegistry,
        now: Nanos,
        cfg: &MechanismConfig,
        dirty_prob: &mut dyn FnMut(Vpn) -> f64,
    ) -> AsyncPoll {
        let mut out = AsyncPoll::default();
        let costs = machine.spec().migration_costs.clone();
        let copy_time = costs.copy_single.to_nanos();

        let mut remaining = Vec::with_capacity(self.inflight.len());
        for mut txn in std::mem::take(&mut self.inflight) {
            if txn.completes > now {
                remaining.push(txn);
                continue;
            }
            let pte = process.space.pte(txn.vpn);
            if !pte.present() || pte.tier() == Some(txn.dest) {
                // Raced with another migration: drop the transaction.
                machine.free(txn.dest_frame);
                self.stats.aborted += 1;
                out.aborted.push(txn.vpn);
                continue;
            }
            if self.rng.gen::<f64>() < dirty_prob(txn.vpn) {
                // Page written during the copy window: retry or abort.
                if txn.retries >= cfg.max_async_retries {
                    machine.free(txn.dest_frame);
                    self.stats.aborted += 1;
                    out.aborted.push(txn.vpn);
                    continue;
                }
                txn.retries += 1;
                txn.completes = now + copy_time;
                self.stats.retried += 1;
                process.space.set_pte(txn.vpn, pte.clear_dirty());
                machine.record_page_copy(pte.tier().expect("present"), txn.dest);
                remaining.push(txn);
                continue;
            }

            // Commit: short unmap → targeted shootdown → remap window.
            let plan = shootdown::plan(process, &machine.topology, &[txn.vpn], cfg.scope);
            let sd = shootdown::execute(&plan, process, tlbs, &costs, cfg.sd_mode);
            let old = process.space.unmap(txn.vpn).expect("present above");
            let old_frame = old.frame().expect("present PTE has a frame");
            if txn.dest == TierKind::Fast && cfg.shadowing && old_frame.tier == TierKind::Slow {
                if let Some(stale) = shadows.retain(txn.vpn, old_frame) {
                    machine.free(stale);
                }
            } else {
                machine.free(old_frame);
            }
            process
                .space
                .set_pte(txn.vpn, old.with_frame(txn.dest_frame).clear_dirty());
            out.background += sd + costs.unmap + costs.remap;
            self.stats.committed += 1;
            out.committed.push(txn.vpn);
        }
        self.inflight = remaining;
        out
    }

    /// Abort every in-flight transaction (workload teardown), freeing the
    /// reserved destination frames.
    pub fn abort_all(&mut self, machine: &mut Machine) {
        for txn in self.inflight.drain(..) {
            machine.free(txn.dest_frame);
            self.stats.aborted += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulcan_sim::{CoreId, MachineSpec, SimThreadId};
    use vulcan_vm::{Asid, LocalTid};

    fn setup(fast: u64, slow: u64) -> (Process, Machine, TlbArray, ShadowRegistry) {
        let mut machine = Machine::new(MachineSpec::small(fast, slow, 8));
        let mut process = Process::new(Asid(1), true);
        for i in 0..4u32 {
            process.spawn_thread(SimThreadId(i));
            machine.topology.pin(SimThreadId(i), CoreId(i as u16));
        }
        let tlbs = TlbArray::new(8);
        (process, machine, tlbs, ShadowRegistry::new())
    }

    /// Map `n` pages in the slow tier, touched by thread 0.
    fn map_slow(process: &mut Process, machine: &mut Machine, n: u64) -> Vec<Vpn> {
        (0..n)
            .map(|i| {
                let vpn = Vpn(i);
                let f = machine.alloc(TierKind::Slow).unwrap();
                process.space.map(vpn, f, LocalTid(0));
                process.space.touch(vpn, LocalTid(0), false).unwrap();
                vpn
            })
            .collect()
    }

    #[test]
    fn sync_promotion_moves_pages() {
        let (mut p, mut m, mut t, mut s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 4);
        let cfg = MechanismConfig::vulcan();
        let out = migrate_sync(&mut p, &mut m, &mut t, &mut s, &pages, TierKind::Fast, &cfg);
        assert_eq!(out.moved.len(), 4);
        assert!(out.skipped.is_empty());
        for &vpn in &pages {
            assert_eq!(p.space.pte(vpn).tier(), Some(TierKind::Fast));
        }
        assert!(out.total_cycles() > Cycles::ZERO);
        // Shadows retained for all promoted pages.
        assert_eq!(s.len(), 4);
        // Slow frames not freed (held as shadows).
        assert_eq!(m.free_pages(TierKind::Slow), 12);
    }

    #[test]
    fn sync_without_shadowing_frees_source() {
        let (mut p, mut m, mut t, mut s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 4);
        let cfg = MechanismConfig::linux_baseline();
        migrate_sync(&mut p, &mut m, &mut t, &mut s, &pages, TierKind::Fast, &cfg);
        assert_eq!(m.free_pages(TierKind::Slow), 16);
        assert!(s.is_empty());
    }

    #[test]
    fn sync_skips_pages_already_in_dest_or_unmapped() {
        let (mut p, mut m, mut t, mut s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 1);
        let cfg = MechanismConfig::vulcan();
        let all = vec![pages[0], Vpn(999)];
        let out = migrate_sync(&mut p, &mut m, &mut t, &mut s, &all, TierKind::Fast, &cfg);
        assert_eq!(out.moved, vec![pages[0]]);
        assert_eq!(out.skipped, vec![Vpn(999)]);
        // Second promotion of the same page is a no-op.
        let out2 = migrate_sync(&mut p, &mut m, &mut t, &mut s, &pages, TierKind::Fast, &cfg);
        assert!(out2.moved.is_empty());
        assert_eq!(out2.phases.total(), Cycles::ZERO);
    }

    #[test]
    fn sync_restores_mapping_when_dest_full() {
        let (mut p, mut m, mut t, mut s) = setup(2, 16);
        let pages = map_slow(&mut p, &mut m, 4);
        let cfg = MechanismConfig::vulcan();
        let out = migrate_sync(&mut p, &mut m, &mut t, &mut s, &pages, TierKind::Fast, &cfg);
        assert_eq!(out.moved.len(), 2);
        assert_eq!(out.skipped.len(), 2);
        for &vpn in &out.skipped {
            assert_eq!(p.space.pte(vpn).tier(), Some(TierKind::Slow), "restored");
        }
    }

    #[test]
    fn clean_demotion_uses_shadow_remap() {
        let (mut p, mut m, mut t, mut s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 2);
        let cfg = MechanismConfig::vulcan();
        migrate_sync(&mut p, &mut m, &mut t, &mut s, &pages, TierKind::Fast, &cfg);
        let slow_free_before = m.free_pages(TierKind::Slow);
        let out = migrate_sync(&mut p, &mut m, &mut t, &mut s, &pages, TierKind::Slow, &cfg);
        assert_eq!(out.remap_only, 2, "clean pages remap to shadows");
        assert_eq!(out.phases.copy, Cycles::ZERO);
        // No new slow frames consumed: the shadows were reused.
        assert_eq!(m.free_pages(TierKind::Slow), slow_free_before);
        assert_eq!(m.free_pages(TierKind::Fast), 16);
    }

    #[test]
    fn dirty_demotion_copies() {
        let (mut p, mut m, mut t, mut s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 1);
        let cfg = MechanismConfig::vulcan();
        migrate_sync(&mut p, &mut m, &mut t, &mut s, &pages, TierKind::Fast, &cfg);
        // Write the promoted page: shadow is stale.
        p.space.touch(pages[0], LocalTid(0), true).unwrap();
        let out = migrate_sync(&mut p, &mut m, &mut t, &mut s, &pages, TierKind::Slow, &cfg);
        assert_eq!(out.remap_only, 0);
        assert_eq!(out.moved.len(), 1);
        assert!(out.phases.copy > Cycles::ZERO);
        assert_eq!(p.space.pte(pages[0]).tier(), Some(TierKind::Slow));
        // The stale shadow was released: all slow frames accounted for.
        assert_eq!(m.free_pages(TierKind::Slow), 15);
    }

    #[test]
    fn vulcan_mechanism_is_cheaper_than_baseline() {
        let cfg_v = MechanismConfig::vulcan();
        let cfg_b = MechanismConfig::linux_baseline();
        let (mut p1, mut m1, mut t1, mut s1) = setup(64, 64);
        let pages1 = map_slow(&mut p1, &mut m1, 16);
        let v = migrate_sync(
            &mut p1,
            &mut m1,
            &mut t1,
            &mut s1,
            &pages1,
            TierKind::Fast,
            &cfg_v,
        );
        let (mut p2, mut m2, mut t2, mut s2) = setup(64, 64);
        let pages2 = map_slow(&mut p2, &mut m2, 16);
        let b = migrate_sync(
            &mut p2,
            &mut m2,
            &mut t2,
            &mut s2,
            &pages2,
            TierKind::Fast,
            &cfg_b,
        );
        // On this 8-core test machine the preparation gap is modest; the
        // 32-core benches show the full 3-4x of Figure 7.
        assert!(
            v.total_cycles().0 * 13 < b.total_cycles().0 * 10,
            "vulcan {} vs baseline {}",
            v.total_cycles(),
            b.total_cycles()
        );
    }

    #[test]
    fn async_commit_moves_clean_page() {
        let (mut p, mut m, mut t, mut s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 1);
        let cfg = MechanismConfig::vulcan();
        let mut am = AsyncMigrator::new();
        let started = am.start(&mut p, &mut m, &mut t, &pages, TierKind::Fast, Nanos(0));
        assert_eq!(started, 1);
        assert!(am.is_inflight(pages[0]));
        // Source still mapped in slow tier during the copy.
        assert_eq!(p.space.pte(pages[0]).tier(), Some(TierKind::Slow));
        // Not yet due.
        let early = am.poll(&mut p, &mut m, &mut t, &mut s, Nanos(1), &cfg, &mut |_| 0.0);
        assert!(early.committed.is_empty());
        let done = am.poll(
            &mut p,
            &mut m,
            &mut t,
            &mut s,
            Nanos::millis(1),
            &cfg,
            &mut |_| 0.0,
        );
        assert_eq!(done.committed, pages);
        assert_eq!(p.space.pte(pages[0]).tier(), Some(TierKind::Fast));
        assert_eq!(am.stats.committed, 1);
        assert!(done.background > Cycles::ZERO);
    }

    #[test]
    fn async_dirty_page_retries_then_aborts() {
        let (mut p, mut m, mut t, mut s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 1);
        let cfg = MechanismConfig {
            max_async_retries: 2,
            ..MechanismConfig::vulcan()
        };
        let mut am = AsyncMigrator::new();
        am.start(&mut p, &mut m, &mut t, &pages, TierKind::Fast, Nanos(0));
        let mut now = Nanos(0);
        for round in 0..3 {
            // The workload writes the page during every copy window.
            p.space.touch(pages[0], LocalTid(0), true).unwrap();
            now += Nanos::millis(1);
            let poll = am.poll(&mut p, &mut m, &mut t, &mut s, now, &cfg, &mut |_| 1.0);
            if round < 2 {
                assert!(poll.aborted.is_empty(), "round {round} should retry");
            } else {
                assert_eq!(poll.aborted, pages, "retries exhausted");
            }
        }
        assert_eq!(am.stats.retried, 2);
        assert_eq!(am.stats.aborted, 1);
        // Page stayed in the slow tier; the reserved fast frame was freed.
        assert_eq!(p.space.pte(pages[0]).tier(), Some(TierKind::Slow));
        assert_eq!(m.free_pages(TierKind::Fast), 16);
    }

    #[test]
    fn async_does_not_double_start() {
        let (mut p, mut m, mut t, _s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 1);
        let mut am = AsyncMigrator::new();
        assert_eq!(
            am.start(&mut p, &mut m, &mut t, &pages, TierKind::Fast, Nanos(0)),
            1
        );
        assert_eq!(
            am.start(&mut p, &mut m, &mut t, &pages, TierKind::Fast, Nanos(0)),
            0
        );
        assert_eq!(am.inflight(), 1);
    }

    #[test]
    fn async_abort_all_releases_frames() {
        let (mut p, mut m, mut t, _s) = setup(16, 16);
        let pages = map_slow(&mut p, &mut m, 3);
        let mut am = AsyncMigrator::new();
        am.start(&mut p, &mut m, &mut t, &pages, TierKind::Fast, Nanos(0));
        assert_eq!(m.free_pages(TierKind::Fast), 13);
        am.abort_all(&mut m);
        assert_eq!(m.free_pages(TierKind::Fast), 16);
        assert_eq!(am.inflight(), 0);
    }

    #[test]
    fn async_start_stops_when_dest_full() {
        let (mut p, mut m, mut t, _s) = setup(2, 16);
        let pages = map_slow(&mut p, &mut m, 4);
        let mut am = AsyncMigrator::new();
        assert_eq!(
            am.start(&mut p, &mut m, &mut t, &pages, TierKind::Fast, Nanos(0)),
            2
        );
    }
}
