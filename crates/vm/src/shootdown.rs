//! TLB shootdown planning and execution.
//!
//! Conventional kernels broadcast IPIs to every core running any thread of
//! the process (the `mm_cpumask`), because the shared page table gives no
//! finer information. Vulcan's per-thread replication identifies exactly
//! which threads can cache a migrating page (§3.4), shrinking the IPI
//! target set — `ShootdownScope::Targeted`.

use crate::addr::Vpn;
use crate::process::Process;
use crate::tlb::TlbArray;
use std::collections::BTreeSet;
use vulcan_sim::{CoreId, Cycles, FaultPlan, FaultSite, MigrationCosts, Topology};

/// How IPI targets are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShootdownScope {
    /// All cores running any thread of the process (vanilla Linux).
    ProcessWide,
    /// Only cores whose threads own/share the pages (Vulcan, §3.4).
    Targeted,
}

/// How the flush cost is modeled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShootdownMode {
    /// Cold single-page path (Figure 2 regime).
    Cold,
    /// Batched bulk-migration path (Figure 3/7 regime).
    Batched,
}

/// A planned shootdown: pages to invalidate and cores to interrupt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShootdownPlan {
    /// Pages whose translations must be invalidated.
    pub pages: Vec<Vpn>,
    /// Remote cores that receive an IPI.
    pub targets: BTreeSet<CoreId>,
}

impl ShootdownPlan {
    /// Number of IPI targets.
    pub fn n_targets(&self) -> u16 {
        u16::try_from(self.targets.len())
            .expect("IPI targets are distinct cores, and core IDs are u16")
    }
}

/// Plan a shootdown for `pages` of `process` under `scope`.
///
/// Unmapped pages contribute no targets of their own but are still listed
/// for invalidation (their translations may linger in TLBs).
pub fn plan(
    process: &Process,
    topology: &Topology,
    pages: &[Vpn],
    scope: ShootdownScope,
) -> ShootdownPlan {
    let targets = match scope {
        ShootdownScope::ProcessWide => topology.cores_of(process.sim_threads().iter().copied()),
        ShootdownScope::Targeted => {
            let mut cores = BTreeSet::new();
            for &vpn in pages {
                if let Some(threads) = process.caching_threads(vpn) {
                    cores.extend(topology.cores_of(threads));
                }
            }
            cores
        }
    };
    ShootdownPlan {
        pages: pages.to_vec(),
        targets,
    }
}

/// Outcome of a shootdown under fault injection: total modeled cycles
/// (base IPI round plus every retry and its backoff) and how the round
/// degraded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShootdownOutcome {
    /// Total cycles charged to the cost model.
    pub cycles: Cycles,
    /// Ack-timeout retries performed (0 when no fault fired).
    pub retries: u32,
    /// True when the retry budget was exhausted and the initiator fell
    /// back to a final full re-broadcast.
    pub escalated: bool,
}

/// Base spin-wait charged for the first ack-timeout backoff; doubles per
/// retry (bounded by the plan's retry budget).
const ACK_BACKOFF_BASE: u64 = 1 << 12;

/// Execute a planned shootdown: invalidate TLB entries on the target cores
/// and return the modeled cycle cost.
pub fn execute(
    plan: &ShootdownPlan,
    process: &Process,
    tlbs: &mut TlbArray,
    costs: &MigrationCosts,
    mode: ShootdownMode,
) -> Cycles {
    let mut no_faults = FaultPlan::disabled();
    execute_faulty(plan, process, tlbs, costs, mode, &mut no_faults).cycles
}

/// Execute a planned shootdown under a fault plan. Injected ack timeouts
/// cost bounded retries with exponential backoff, all charged to the
/// returned cycle total; when the retry budget runs out the initiator
/// escalates to one final re-broadcast (correctness is preserved — the
/// invalidations themselves always complete).
pub fn execute_faulty(
    plan: &ShootdownPlan,
    process: &Process,
    tlbs: &mut TlbArray,
    costs: &MigrationCosts,
    mode: ShootdownMode,
    faults: &mut FaultPlan,
) -> ShootdownOutcome {
    for &vpn in &plan.pages {
        tlbs.invalidate_on(plan.targets.iter().copied(), process.asid, vpn);
    }
    let base = cost_of(plan, costs, mode);
    let mut out = ShootdownOutcome {
        cycles: base,
        retries: 0,
        escalated: false,
    };
    if plan.n_targets() == 0 {
        // No remote acks to wait on; nothing to time out.
        return out;
    }
    let budget = faults.config().max_shootdown_retries;
    while faults.shootdown_times_out() {
        if out.retries >= budget {
            // Budget exhausted: one final full re-broadcast, no more
            // timeout draws (the escalated round is modeled as reliable).
            out.escalated = true;
            out.cycles += base;
            break;
        }
        out.retries += 1;
        // Re-send the IPI round and spin an exponentially growing
        // backoff before sampling the acks again.
        let backoff = ACK_BACKOFF_BASE << (out.retries - 1).min(16);
        out.cycles += base + Cycles(backoff);
        faults.note_recovery(FaultSite::ShootdownTimeout);
    }
    out
}

/// The modeled cost of a shootdown without executing it (used by
/// what-if analysis in the biased migration policy).
pub fn cost_of(plan: &ShootdownPlan, costs: &MigrationCosts, mode: ShootdownMode) -> Cycles {
    let targets = plan.n_targets();
    match mode {
        ShootdownMode::Cold => {
            // One broadcast per page on the cold path.
            let per_page = costs.shootdown_cold(targets);
            Cycles(per_page.0 * plan.pages.len() as u64)
        }
        ShootdownMode::Batched => costs.shootdown_batched(plan.pages.len() as u64, targets),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb::Asid;
    use vulcan_sim::{FrameId, SimThreadId, TierKind};

    /// 8 threads on 8 distinct cores; pages 0..4 private to t0, page 10 shared.
    fn setup() -> (Process, Topology, TlbArray) {
        let mut p = Process::new(Asid(1), true);
        let mut topo = Topology::new(32);
        for i in 0..8u32 {
            let tid = p.spawn_thread(SimThreadId(i));
            topo.pin(SimThreadId(i), CoreId(i as u16));
            let _ = tid;
        }
        for v in 0..4u64 {
            p.space.map(
                Vpn(v),
                FrameId {
                    tier: TierKind::Slow,
                    index: v as u32,
                },
                crate::pte::LocalTid(0),
            );
            p.space
                .touch(Vpn(v), crate::pte::LocalTid(0), false)
                .unwrap();
        }
        p.space.map(
            Vpn(10),
            FrameId {
                tier: TierKind::Slow,
                index: 10,
            },
            crate::pte::LocalTid(0),
        );
        p.space
            .touch(Vpn(10), crate::pte::LocalTid(0), false)
            .unwrap();
        p.space
            .touch(Vpn(10), crate::pte::LocalTid(3), false)
            .unwrap();
        let tlbs = TlbArray::new(32);
        (p, topo, tlbs)
    }

    #[test]
    fn process_wide_targets_all_process_cores() {
        let (p, topo, _) = setup();
        let plan = plan(&p, &topo, &[Vpn(0)], ShootdownScope::ProcessWide);
        assert_eq!(plan.n_targets(), 8);
    }

    #[test]
    fn targeted_private_page_hits_one_core() {
        let (p, topo, _) = setup();
        let plan = plan(&p, &topo, &[Vpn(0)], ShootdownScope::Targeted);
        assert_eq!(plan.n_targets(), 1);
        assert!(plan.targets.contains(&CoreId(0)));
    }

    #[test]
    fn targeted_shared_page_hits_all_threads() {
        let (p, topo, _) = setup();
        let plan = plan(&p, &topo, &[Vpn(10)], ShootdownScope::Targeted);
        assert_eq!(plan.n_targets(), 8, "shared page caches anywhere");
    }

    #[test]
    fn targeted_mixed_batch_unions_targets() {
        let (p, topo, _) = setup();
        let plan = plan(&p, &topo, &[Vpn(0), Vpn(1)], ShootdownScope::Targeted);
        assert_eq!(plan.n_targets(), 1, "both pages private to t0");
    }

    #[test]
    fn unmapped_page_contributes_no_targets() {
        let (p, topo, _) = setup();
        let plan = plan(&p, &topo, &[Vpn(999)], ShootdownScope::Targeted);
        assert_eq!(plan.n_targets(), 0);
    }

    #[test]
    fn execute_invalidates_target_tlbs_only() {
        let (p, topo, mut tlbs) = setup();
        let f = FrameId {
            tier: TierKind::Slow,
            index: 0,
        };
        tlbs.core(CoreId(0)).insert(p.asid, Vpn(0), f);
        tlbs.core(CoreId(5)).insert(p.asid, Vpn(0), f);
        let plan = plan(&p, &topo, &[Vpn(0)], ShootdownScope::Targeted);
        let cost = execute(
            &plan,
            &p,
            &mut tlbs,
            &MigrationCosts::default(),
            ShootdownMode::Cold,
        );
        assert!(cost > Cycles::ZERO);
        // Target core 0 flushed; non-target core 5 keeps its stale entry
        // (harmless here: only the migration path relies on invalidation,
        // and it targets exactly the cores that can hold the page).
        assert_eq!(tlbs.core(CoreId(0)).lookup(p.asid, Vpn(0)), None);
        assert!(tlbs.core(CoreId(5)).lookup(p.asid, Vpn(0)).is_some());
    }

    #[test]
    fn targeted_cost_is_lower() {
        let (p, topo, _) = setup();
        let costs = MigrationCosts::default();
        let pages: Vec<Vpn> = (0..4).map(Vpn).collect();
        let wide = plan(&p, &topo, &pages, ShootdownScope::ProcessWide);
        let narrow = plan(&p, &topo, &pages, ShootdownScope::Targeted);
        let wide_cost = cost_of(&wide, &costs, ShootdownMode::Batched);
        let narrow_cost = cost_of(&narrow, &costs, ShootdownMode::Batched);
        assert!(
            narrow_cost.0 * 4 < wide_cost.0,
            "{narrow_cost} vs {wide_cost}"
        );
    }

    #[test]
    fn faulty_ack_timeouts_charge_bounded_retries() {
        use vulcan_sim::{FaultConfig, FaultSite};
        let (p, topo, mut tlbs) = setup();
        let costs = MigrationCosts::default();
        let sd = plan(&p, &topo, &[Vpn(0)], ShootdownScope::Targeted);
        let clean = cost_of(&sd, &costs, ShootdownMode::Cold);
        // Every ack round times out: retries must stop at the budget and
        // escalate, charging every round to the cost model.
        let mut faults = FaultPlan::new(3, FaultConfig::single(FaultSite::ShootdownTimeout, 1.0));
        let out = execute_faulty(&sd, &p, &mut tlbs, &costs, ShootdownMode::Cold, &mut faults);
        let budget = faults.config().max_shootdown_retries;
        assert_eq!(out.retries, budget);
        assert!(out.escalated);
        // base + budget retries + final escalation broadcast + backoffs.
        assert!(out.cycles.0 > clean.0 * (budget as u64 + 2));
        assert!(faults.stats().injected[FaultSite::ShootdownTimeout.index()] > 0);
    }

    #[test]
    fn faulty_zero_rate_matches_clean_execute() {
        let (p, topo, mut tlbs) = setup();
        let costs = MigrationCosts::default();
        let sd = plan(&p, &topo, &[Vpn(0), Vpn(1)], ShootdownScope::Targeted);
        let mut faults = FaultPlan::disabled();
        let out = execute_faulty(
            &sd,
            &p,
            &mut tlbs,
            &costs,
            ShootdownMode::Batched,
            &mut faults,
        );
        assert_eq!(out.cycles, cost_of(&sd, &costs, ShootdownMode::Batched));
        assert_eq!(out.retries, 0);
        assert!(!out.escalated);
    }

    #[test]
    fn zero_target_shootdown_never_times_out() {
        use vulcan_sim::{FaultConfig, FaultSite};
        let (p, topo, mut tlbs) = setup();
        let sd = plan(&p, &topo, &[Vpn(999)], ShootdownScope::Targeted);
        let mut faults = FaultPlan::new(1, FaultConfig::single(FaultSite::ShootdownTimeout, 1.0));
        let out = execute_faulty(
            &sd,
            &p,
            &mut tlbs,
            &MigrationCosts::default(),
            ShootdownMode::Cold,
            &mut faults,
        );
        assert_eq!(out.retries, 0, "no remote acks to wait on");
    }

    /// Pins the Fig 7 responder-accounting convention audited in DESIGN
    /// §8: a process-wide plan counts every core running a thread of the
    /// process — including the initiating core — while the paper's
    /// Figure 2/3 sweeps report *responders* (n − 1). The +1 shrinks the
    /// relative benefit of targeted shootdowns in the Fig 7 comparison
    /// (the "TLB-opt increment understated" deviation in EXPERIMENTS.md).
    #[test]
    fn process_wide_plan_counts_initiator_as_target() {
        let (p, topo, _) = setup();
        let wide = plan(&p, &topo, &[Vpn(0)], ShootdownScope::ProcessWide);
        // 8 threads on 8 cores: all 8 are targets, not 7 responders.
        assert_eq!(wide.n_targets(), 8);
        let narrow = plan(&p, &topo, &[Vpn(0)], ShootdownScope::Targeted);
        // The private page is owned by thread 0 — which runs on the
        // initiating core in the Fig 7 workloads, so the targeted set
        // still contains the initiator rather than dropping to zero.
        assert_eq!(narrow.n_targets(), 1);
    }

    #[test]
    fn zero_target_shootdown_is_free() {
        let (p, topo, _) = setup();
        let plan = plan(&p, &topo, &[Vpn(999)], ShootdownScope::Targeted);
        let cost = cost_of(&plan, &MigrationCosts::default(), ShootdownMode::Cold);
        assert_eq!(cost, Cycles::ZERO);
    }
}
