//! Property-based tests for the virtual-memory substrate.

use proptest::prelude::*;
use vulcan_sim::{CoreId, FrameId, SimThreadId, TierKind, Topology};
use vulcan_vm::{
    shootdown, AddressSpace, Asid, LocalTid, PageOwner, Process, Pte, ShootdownScope, Tlb,
    TlbArray, Vpn,
};

fn arb_frame() -> impl Strategy<Value = FrameId> {
    (any::<bool>(), 0u32..1_000_000).prop_map(|(slow, index)| FrameId {
        tier: if slow { TierKind::Slow } else { TierKind::Fast },
        index,
    })
}

proptest! {
    /// PTE bit packing is lossless for every frame/owner/flag combination.
    #[test]
    fn pte_roundtrip(frame in arb_frame(), tid in 0u8..=0x7E, a in any::<bool>(), d in any::<bool>(), p in any::<bool>()) {
        let mut pte = Pte::new(frame, LocalTid(tid));
        if a { pte = pte.touch(false); }
        if d { pte = pte.touch(true); }
        pte = pte.with_poisoned(p);
        prop_assert!(pte.present());
        prop_assert_eq!(pte.frame(), Some(frame));
        prop_assert_eq!(pte.owner(), PageOwner::Private(LocalTid(tid)));
        prop_assert_eq!(pte.accessed(), a || d);
        prop_assert_eq!(pte.dirty(), d);
        prop_assert_eq!(pte.poisoned(), p);
    }

    /// map → pte → unmap roundtrips for arbitrary sparse vpn sets.
    #[test]
    fn map_unmap_roundtrip(entries in proptest::collection::btree_map(0u64..(1<<30), arb_frame(), 1..64)) {
        let mut s = AddressSpace::new(true);
        for (&v, &f) in &entries {
            s.map(Vpn(v), f, LocalTid(0));
        }
        prop_assert_eq!(s.rss_pages(), entries.len() as u64);
        for (&v, &f) in &entries {
            prop_assert_eq!(s.pte(Vpn(v)).frame(), Some(f));
        }
        // mapped_vpns agrees with the inserted key set.
        let listed: Vec<u64> = s.mapped_vpns().map(|v| v.0).collect();
        let keys: Vec<u64> = entries.keys().copied().collect();
        prop_assert_eq!(listed, keys);
        for (&v, &f) in &entries {
            let old = s.unmap(Vpn(v)).unwrap();
            prop_assert_eq!(old.frame(), Some(f));
        }
        prop_assert_eq!(s.rss_pages(), 0);
    }

    /// Ownership only moves up the lattice: unowned → private → shared,
    /// and the final state is private iff exactly one thread touched.
    #[test]
    fn ownership_lattice_monotone(touches in proptest::collection::vec(0u8..4, 1..32)) {
        let mut s = AddressSpace::new(true);
        s.map(Vpn(7), FrameId { tier: TierKind::Slow, index: 1 }, LocalTid(touches[0]));
        let mut seen_shared = false;
        for &t in &touches {
            let out = s.touch(Vpn(7), LocalTid(t), false).unwrap();
            if seen_shared {
                prop_assert_eq!(out.pte.owner(), PageOwner::Shared, "shared is absorbing");
            }
            if out.pte.owner() == PageOwner::Shared {
                seen_shared = true;
            }
        }
        let distinct: std::collections::BTreeSet<u8> = touches.iter().copied().collect();
        match s.owner(Vpn(7)).unwrap() {
            PageOwner::Private(t) => {
                prop_assert_eq!(distinct.len(), 1);
                prop_assert_eq!(t, LocalTid(touches[0]));
            }
            PageOwner::Shared => prop_assert!(distinct.len() >= 2),
        }
    }

    /// A TLB never returns a translation that was invalidated and never
    /// exceeds its capacity.
    #[test]
    fn tlb_coherence(ops in proptest::collection::vec((0u64..128, any::<bool>()), 1..200)) {
        let mut tlb = Tlb::new(4, 2); // tiny: forces eviction
        let asid = Asid(1);
        let mut shadow: std::collections::HashMap<u64, u32> = Default::default();
        for (i, &(v, invalidate)) in ops.iter().enumerate() {
            if invalidate {
                tlb.invalidate(asid, Vpn(v));
                shadow.remove(&v);
            } else {
                let f = FrameId { tier: TierKind::Fast, index: i as u32 };
                tlb.insert(asid, Vpn(v), f);
                shadow.insert(v, i as u32);
            }
            prop_assert!(tlb.occupancy() <= 8);
        }
        // Lookups may miss (capacity evictions) but a hit must match the
        // last inserted frame — stale frames are a coherence violation.
        for (&v, &idx) in &shadow {
            if let Some(f) = tlb.lookup(asid, Vpn(v)) {
                prop_assert_eq!(f.index, idx);
            }
        }
    }

    /// Targeted shootdown targets are always a subset of process-wide
    /// targets, and shared pages force all-thread coverage.
    #[test]
    fn targeted_subset_of_process_wide(
        n_threads in 1usize..8,
        page_owners in proptest::collection::vec(0u8..8, 1..16),
    ) {
        let mut p = Process::new(Asid(1), true);
        let mut topo = Topology::new(32);
        for i in 0..n_threads {
            let tid = p.spawn_thread(SimThreadId(i as u32));
            topo.pin(SimThreadId(i as u32), CoreId(i as u16));
            let _ = tid;
        }
        let mut pages = Vec::new();
        for (i, &o) in page_owners.iter().enumerate() {
            let vpn = Vpn(i as u64);
            let owner = LocalTid(o % n_threads as u8);
            p.space.map(vpn, FrameId { tier: TierKind::Slow, index: i as u32 }, owner);
            p.space.touch(vpn, owner, false).unwrap();
            pages.push(vpn);
        }
        let wide = shootdown::plan(&p, &topo, &pages, ShootdownScope::ProcessWide);
        let narrow = shootdown::plan(&p, &topo, &pages, ShootdownScope::Targeted);
        prop_assert!(narrow.targets.is_subset(&wide.targets));
        prop_assert!(!narrow.targets.is_empty());
    }

    /// After executing a shootdown, no target core holds any of the pages.
    #[test]
    fn shootdown_clears_targets(pages in proptest::collection::btree_set(0u64..64, 1..16)) {
        let mut p = Process::new(Asid(3), true);
        let mut topo = Topology::new(8);
        for i in 0..4u32 {
            p.spawn_thread(SimThreadId(i));
            topo.pin(SimThreadId(i), CoreId(i as u16));
        }
        let mut tlbs = TlbArray::new(8);
        let vpns: Vec<Vpn> = pages.iter().map(|&v| Vpn(v)).collect();
        for (i, &vpn) in vpns.iter().enumerate() {
            let owner = LocalTid((i % 4) as u8);
            p.space.map(vpn, FrameId { tier: TierKind::Slow, index: i as u32 }, owner);
            p.space.touch(vpn, owner, false).unwrap();
            // Seed every core's TLB with the page.
            for c in 0..8u16 {
                tlbs.core(CoreId(c)).insert(p.asid, vpn, p.space.pte(vpn).frame().unwrap());
            }
        }
        let plan = shootdown::plan(&p, &topo, &vpns, ShootdownScope::ProcessWide);
        shootdown::execute(&plan, &p, &mut tlbs, &vulcan_sim::MigrationCosts::default(),
                           vulcan_vm::ShootdownMode::Batched);
        for &core in &plan.targets {
            for &vpn in &vpns {
                prop_assert_eq!(tlbs.core(core).lookup(p.asid, vpn), None);
            }
        }
    }
}
