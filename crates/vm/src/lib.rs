//! # vulcan-vm — virtual-memory substrate
//!
//! Page tables, TLBs and TLB shootdowns for the Vulcan reproduction.
//!
//! The centerpiece is [`table::AddressSpace`]: four-level radix page
//! tables supporting the paper's **per-thread page-table replication**
//! (§3.4) — per-thread upper levels over shared last-level tables, with
//! PTE bits 52–58 tracking thread ownership. Ownership feeds
//! [`shootdown`]'s targeted IPI planning, the mechanism behind Vulcan's
//! reduced TLB-coherence cost.

#![warn(missing_docs)]

pub mod addr;
pub mod process;
pub mod pte;
pub mod shootdown;
pub mod table;
pub mod tlb;

pub use addr::{Vpn, VpnRange, FANOUT, LEVELS, LEVEL_BITS};
pub use process::Process;
pub use pte::{merge_owner, LocalTid, PageOwner, Pte, MAX_LOCAL_TID, SHARED_TID};
pub use shootdown::{ShootdownMode, ShootdownOutcome, ShootdownPlan, ShootdownScope};
pub use table::{AddressSpace, TouchOutcome};
pub use tlb::{Asid, Tlb, TlbArray};
