//! `vulcan-bench churn` — open-loop multi-tenant churn sweeps (ISSUE 6).
//!
//! The grid crosses arrival rates with the four paper policies on a
//! shared machine carrying two long-lived anchor tenants. Each cell
//! wraps an [`ExperimentCell`]'s paused runner in a
//! [`vulcan_churn::ChurnEngine`] and drives hundreds of tenant
//! lifetimes — Poisson arrivals, Pareto lifetimes, capacity-gated
//! admission, periodic compaction — then audits the wreckage:
//!
//! 1. **No panics** — every cell runs to completion at every rate.
//! 2. **Frame conservation** — after the final teardown sweep both tier
//!    allocators report zero used frames: no arrival/departure/
//!    compaction interleaving leaks a frame.
//! 3. **Churn scale** — the full sweep spawns at least
//!    [`ChurnOpts::min_spawned`] tenants per cell (the "hundreds of
//!    lifetimes" bar; relaxed in `--quick`).
//! 4. **Rate-0 identity** — a rate-0, compaction-off engine cell
//!    produces a [`RunResult`] identical to the same cell run through
//!    the plain static path (`ExperimentCell::run`): the churn engine
//!    is provably a no-op wrapper when nothing churns.
//!
//! Per-policy rows report windowed fairness (mean Jain over live-tenant
//! FTHR windows), mean windowed FTHR, and the p99 tail of per-quantum op
//! latency across all tenants — the "leave no one behind" metrics under
//! sustained tenancy churn. Cells are deterministic (counter-hashed
//! randomness, single-threaded engines), so the artifact is
//! byte-identical across thread counts and reruns.

use rayon::prelude::*;
use vulcan::prelude::*;
use vulcan_churn::{Catalog, ChurnConfig, ChurnEngine, ChurnReport};
use vulcan_json::{Map, Value};

use crate::suite::ExperimentCell;

/// Base seed for every churn cell (one seed governs runner + engine).
const CHURN_SEED: u64 = 42;

/// Scale knobs for the churn sweep.
#[derive(Clone, Copy, Debug)]
pub struct ChurnOpts {
    /// Arrival rates swept (tenants per displayed second).
    pub rates: &'static [f64],
    /// Quanta (displayed seconds) per cell.
    pub quanta: u64,
    /// Minimum tenants each cell must spawn (0 disables the check).
    pub min_spawned: u64,
    /// Intra-cell shard count (ISSUE 7); rows are byte-identical for
    /// any value.
    pub shards: usize,
}

impl ChurnOpts {
    /// The full grid: 2 rates × 4 policies, long enough that every cell
    /// spawns and retires well over 200 tenants.
    pub fn full() -> Self {
        ChurnOpts {
            rates: &[2.0, 4.0],
            quanta: 160,
            min_spawned: 200,
            shards: 1,
        }
    }

    /// CI scale: one rate, short cells, no tenant-count floor.
    pub fn quick() -> Self {
        ChurnOpts {
            rates: &[3.0],
            quanta: 16,
            min_spawned: 0,
            shards: 1,
        }
    }

    /// Override the intra-cell shard count.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }
}

/// The anchor co-location: a latency-critical front end and a
/// best-effort scan that never depart, preallocated so the capacity
/// they hold is physically real from quantum zero. Churned tenants
/// arrive and leave around them.
fn anchor_specs() -> Vec<WorkloadSpec> {
    let mut lc = microbench(
        "anchor-lc",
        MicroConfig {
            rss_pages: 512,
            wss_pages: 128,
            read_ratio: 0.9,
            skew: 1.1,
            ..Default::default()
        },
        2,
    )
    .preallocated(TierKind::Slow);
    lc.class = WorkloadClass::LatencyCritical;
    let be = microbench(
        "anchor-be",
        MicroConfig {
            rss_pages: 512,
            wss_pages: 256,
            read_ratio: 0.6,
            skew: 0.9,
            ..Default::default()
        },
        2,
    )
    .preallocated(TierKind::Slow);
    vec![lc, be]
}

fn base_cell(kind: PolicyKind, quanta: u64) -> ExperimentCell {
    ExperimentCell::new(kind, anchor_specs(), quanta, CHURN_SEED)
        .on_machine(MachineSpec::small(2_048, 32_768, 8))
        .with_quantum_active(Nanos::millis(1))
}

fn churn_cfg(rate: f64, quanta: u64) -> ChurnConfig {
    ChurnConfig {
        arrival_rate_per_sec: rate,
        lifetime_xm: Nanos::secs(2),
        lifetime_alpha: 2.0,
        n_quanta: quanta,
        max_queue: 8,
        queue_timeout: Nanos::secs(10),
        compaction_period: Nanos::secs(5),
        compaction_budget: 256,
    }
}

/// One grid point: a cell plus the churn configuration driving it.
struct ChurnCell {
    cell: ExperimentCell,
    cfg: ChurnConfig,
    rate: f64,
}

fn churn_grid(opts: &ChurnOpts) -> Vec<ChurnCell> {
    let mut grid = Vec::new();
    for &rate in opts.rates {
        for kind in PolicyKind::PAPER {
            let mut cell = base_cell(kind, opts.quanta).with_shards(opts.shards);
            cell.label = format!("churn/{kind}/r{rate}");
            grid.push(ChurnCell {
                cell,
                cfg: churn_cfg(rate, opts.quanta),
                rate,
            });
        }
    }
    grid
}

/// Outcome of one churned cell: the artifact row plus any contract
/// violations observed.
struct CellOutcome {
    row: Value,
    violations: Vec<String>,
}

fn run_cell(c: &ChurnCell, min_spawned: u64) -> CellOutcome {
    let runner = c.cell.paused_runner();
    let engine = ChurnEngine::new(runner, c.cell.seed, c.cfg.clone(), Catalog::default_mix());
    let report = engine.run();
    let mut violations = Vec::new();

    if report.leaked_total() != 0 {
        violations.push(format!(
            "{}: frames leaked at teardown (per tier: {:?})",
            c.cell.label, report.leaked_by_tier
        ));
    }
    if min_spawned > 0 && report.stats.spawned() < min_spawned {
        violations.push(format!(
            "{}: only {} tenants spawned (churn floor is {min_spawned})",
            c.cell.label,
            report.stats.spawned()
        ));
    }
    // Arrival bookkeeping: every arrival admitted, queued or rejected.
    let s = &report.stats;
    if s.arrivals != s.admitted + s.queued + s.rejected {
        violations.push(format!(
            "{}: arrival ledger does not balance: {s:?}",
            c.cell.label
        ));
    }

    CellOutcome {
        row: cell_row(&c.cell.label, c.rate, &report),
        violations,
    }
}

fn cell_row(label: &str, rate: f64, report: &ChurnReport) -> Value {
    let s = &report.stats;
    let ops_total: u64 = report.run.per_workload.iter().map(|w| w.ops_total).sum();
    Value::Object(
        Map::new()
            .with("cell", label)
            .with("policy", report.run.policy.as_str())
            .with("rate", rate)
            .with("arrivals", s.arrivals)
            .with("spawned", s.spawned())
            .with("departed", s.departed)
            .with("retired_at_end", s.retired_at_end)
            .with("queued", s.queued)
            .with("admitted_from_queue", s.admitted_from_queue)
            .with("rejected", s.rejected)
            .with("timed_out", s.timed_out)
            .with("peak_active", s.peak_active)
            .with("compaction_rounds", s.compaction_rounds)
            .with("shadows_reclaimed", s.shadows_reclaimed)
            .with("compaction_promoted", s.compaction_promoted)
            .with("mean_windowed_jain", report.mean_windowed_jain())
            .with("mean_windowed_fthr", report.mean_windowed_fthr())
            .with("p99_latency_ns", report.p99_latency_ns())
            .with("ops_total", ops_total)
            .with("leaked_fast", report.leaked_fast)
            .with("leaked_slow", report.leaked_slow),
    )
}

/// Results of a churn sweep: artifact rows (declaration order, controls
/// last) and every contract violation observed.
pub struct ChurnSweepReport {
    /// One JSON row per grid point plus one rate-0 control per policy.
    pub rows: Vec<Value>,
    /// Contract violations; empty on a passing sweep.
    pub violations: Vec<String>,
}

/// Run the full sweep. Pure — printing and exit codes are the binary's
/// concern (and the tests').
pub fn run_churn(opts: &ChurnOpts) -> ChurnSweepReport {
    let grid = churn_grid(opts);
    let outcomes: Vec<CellOutcome> = grid
        .par_iter()
        .map(|c| run_cell(c, opts.min_spawned))
        .collect();

    let mut rows = Vec::new();
    let mut violations = Vec::new();
    for o in outcomes {
        rows.push(o.row);
        violations.extend(o.violations);
    }

    // Rate-0 identity: an engine that schedules nothing must reproduce
    // the static path bit for bit — same summaries, same series.
    let controls: Vec<(Value, Vec<String>)> = PolicyKind::PAPER
        .into_par_iter()
        .map(|kind| {
            let mut cell = base_cell(kind, opts.quanta).with_shards(opts.shards);
            cell.label = format!("churn/{kind}/r0");
            let baseline = cell.run();
            let engine = ChurnEngine::new(
                cell.paused_runner(),
                cell.seed,
                ChurnConfig {
                    n_quanta: opts.quanta,
                    ..ChurnConfig::control(opts.quanta)
                },
                Catalog::default_mix(),
            );
            let report = engine.run();
            let mut violations = Vec::new();
            if format!("{baseline:?}") != format!("{:?}", report.run) {
                violations.push(format!(
                    "{}: rate-0 engine diverged from the static run",
                    cell.label
                ));
            }
            if report.leaked_total() != 0 {
                violations.push(format!(
                    "{}: control cell leaked frames (per tier: {:?})",
                    cell.label, report.leaked_by_tier
                ));
            }
            if report.stats.arrivals != 0 || report.stats.compaction_rounds != 0 {
                violations.push(format!(
                    "{}: control cell scheduled events: {:?}",
                    cell.label, report.stats
                ));
            }
            (cell_row(&cell.label, 0.0, &report), violations)
        })
        .collect();
    for (row, vs) in controls {
        rows.push(row);
        violations.extend(vs);
    }

    ChurnSweepReport { rows, violations }
}

/// Render the sweep as a terminal table (one row per grid point).
pub fn churn_table(rows: &[Value]) -> Table {
    let mut table = Table::new(
        format!(
            "churn: open-loop tenancy sweep ({} threads)",
            rayon::pool::current_num_threads()
        ),
        &[
            "cell",
            "rate",
            "spawned",
            "departed",
            "rejected",
            "peak",
            "jain(win)",
            "p99 lat (us)",
        ],
    );
    for row in rows {
        let u = |k: &str| {
            row.get(k)
                .and_then(Value::as_u64)
                .unwrap_or_default()
                .to_string()
        };
        let f = |k: &str| row.get(k).and_then(Value::as_f64);
        table.row(&[
            row.get("cell")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            format!("{:.1}", f("rate").unwrap_or_default()),
            u("spawned"),
            u("departed"),
            u("rejected"),
            u("peak_active"),
            f("mean_windowed_jain")
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "-".into()),
            f("p99_latency_ns")
                .map(|v| format!("{:.1}", v / 1e3))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-rate micro sweep: the full contract on a grid small enough
    /// for CI unit tests.
    #[test]
    fn micro_sweep_upholds_the_churn_contract() {
        let opts = ChurnOpts {
            rates: &[5.0],
            quanta: 8,
            min_spawned: 1,
            shards: 1,
        };
        let report = run_churn(&opts);
        assert!(
            report.violations.is_empty(),
            "violations: {:?}",
            report.violations
        );
        // 1 rate × 4 policies + 4 rate-0 controls.
        assert_eq!(report.rows.len(), 4 + 4);
        // Every churn cell spawned tenants; every control spawned none.
        for row in &report.rows[..4] {
            assert!(row.get("spawned").and_then(Value::as_u64).unwrap() >= 1);
        }
        for row in &report.rows[4..] {
            assert_eq!(row.get("spawned").and_then(Value::as_u64), Some(0));
            assert_eq!(row.get("arrivals").and_then(Value::as_u64), Some(0));
        }
    }

    #[test]
    fn sweep_rows_are_identical_across_reruns() {
        let opts = ChurnOpts {
            rates: &[4.0],
            quanta: 6,
            min_spawned: 0,
            shards: 1,
        };
        let a = run_churn(&opts);
        let b = run_churn(&opts);
        assert_eq!(a.rows.len(), b.rows.len());
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.to_json(), rb.to_json());
        }
    }
}
