//! Figure 9: dynamic memory allocation and memory-tiering performance of
//! co-located workloads under VULCAN.
//!
//! Memcached starts at 0 s, PageRank at 50 s, Liblinear at 110 s (§5.3).
//! Panels: (a) fast/slow tier occupancy per workload, (b) fast-tier hit
//! ratio (FTHR) over time, (c) guaranteed performance target (GPT) as
//! the GFMC shrinks with each arrival.

use vulcan::prelude::Table;
use vulcan_bench::suite::{fig9_grid, SuiteOpts};
use vulcan_bench::{init_threads, save_json_or_exit};

fn main() {
    init_threads();
    let res = fig9_grid(&SuiteOpts::full())
        .run()
        .pop()
        .expect("fig9 cell");

    // Dump the three panels as JSON series.
    let mut out = vulcan_json::Map::new();
    for name in ["memcached", "pagerank", "liblinear"] {
        for (panel, kind) in [
            ("a_allocation", "fast_pages"),
            ("a_allocation", "slow_pages"),
            ("b_fthr", "fthr"),
            ("c_gpt", "gpt"),
        ] {
            let key = format!("{panel}.{name}.{kind}");
            let s = res.series.get(&format!("{name}.{kind}")).expect("series");
            out.insert(key, vulcan_json::pairs_to_value(&s.points));
        }
    }
    save_json_or_exit("fig9", &vulcan_json::Value::Object(out));

    // Summarize the phase transitions in a table: values at 40 s (solo),
    // 100 s (two apps), 190 s (three apps).
    let mut table = Table::new(
        "Figure 9 summary: Vulcan dynamics at phase boundaries",
        &["workload", "metric", "t=40s", "t=100s", "t=190s"],
    );
    let at = |name: &str, kind: &str, t: f64| -> String {
        res.series
            .get(&format!("{name}.{kind}"))
            .and_then(|s| {
                s.points
                    .iter()
                    .rfind(|&&(ts, _)| ts <= t)
                    .map(|&(_, v)| format!("{v:.2}"))
            })
            .unwrap_or_else(|| "-".into())
    };
    for name in ["memcached", "pagerank", "liblinear"] {
        for kind in ["fast_pages", "fthr", "gpt"] {
            table.row(&[
                name.into(),
                kind.into(),
                at(name, kind, 40.0),
                at(name, kind, 100.0),
                at(name, kind, 190.0),
            ]);
        }
    }
    table.print();
    println!(
        "\nPaper: allocations rebalance at each arrival; every workload's \
         FTHR stays at or above its (shrinking) GPT — the QoS guarantee."
    );
}
