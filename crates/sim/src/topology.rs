//! CPU topology: cores and the threads pinned to them.
//!
//! The paper's testbed pins each application to a dedicated set of 8 cores
//! on a single 32-core socket (§5.3). TLB shootdown cost depends on *which*
//! cores must receive an IPI, so the topology tracks a reverse map from
//! cores to the simulated software threads currently scheduled on them.

use std::collections::BTreeSet;

/// Identifier of a physical core on the simulated socket.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u16);

/// Identifier of a simulated software thread (unique across all workloads).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimThreadId(pub u32);

/// A single-socket CPU topology with static thread→core pinning.
#[derive(Clone, Debug)]
pub struct Topology {
    n_cores: u16,
    /// `pin[t]` = core the thread with dense index `t` runs on.
    pins: Vec<CoreId>,
    /// Thread ids in dense order (parallel to `pins`).
    threads: Vec<SimThreadId>,
}

impl Topology {
    /// Create a topology with `n_cores` cores and no threads.
    pub fn new(n_cores: u16) -> Self {
        assert!(n_cores > 0, "topology needs at least one core");
        Topology {
            n_cores,
            pins: Vec::new(),
            threads: Vec::new(),
        }
    }

    /// Number of cores on the socket.
    pub fn n_cores(&self) -> u16 {
        self.n_cores
    }

    /// Pin a thread to a core. Threads may share cores (oversubscription),
    /// mirroring how a real scheduler would stack them.
    pub fn pin(&mut self, thread: SimThreadId, core: CoreId) {
        assert!(core.0 < self.n_cores, "core {core:?} out of range");
        if let Some(i) = self.threads.iter().position(|&t| t == thread) {
            self.pins[i] = core;
        } else {
            self.threads.push(thread);
            self.pins.push(core);
        }
    }

    /// Pin `threads` round-robin over the half-open core range `[lo, hi)`.
    ///
    /// This mirrors the paper's per-application dedicated core sets
    /// (8 threads on 8 cores per app).
    pub fn pin_range(&mut self, threads: &[SimThreadId], lo: u16, hi: u16) {
        assert!(lo < hi && hi <= self.n_cores, "bad core range [{lo},{hi})");
        let span = (hi - lo) as usize;
        for (i, &t) in threads.iter().enumerate() {
            self.pin(t, CoreId(lo + (i % span) as u16));
        }
    }

    /// The core a thread is pinned to, if it has been pinned.
    pub fn core_of(&self, thread: SimThreadId) -> Option<CoreId> {
        self.threads
            .iter()
            .position(|&t| t == thread)
            .map(|i| self.pins[i])
    }

    /// All distinct cores hosting any of the given threads.
    ///
    /// This is the IPI target set for an ownership-targeted TLB shootdown:
    /// only cores actually running threads that share the migrating page.
    pub fn cores_of(&self, threads: impl IntoIterator<Item = SimThreadId>) -> BTreeSet<CoreId> {
        threads
            .into_iter()
            .filter_map(|t| self.core_of(t))
            .collect()
    }

    /// All cores that host at least one pinned thread (the conventional
    /// process-wide shootdown target set, minus idle cores).
    pub fn occupied_cores(&self) -> BTreeSet<CoreId> {
        self.pins.iter().copied().collect()
    }

    /// All threads currently pinned.
    pub fn threads(&self) -> &[SimThreadId] {
        &self.threads
    }

    /// Threads pinned to a given core.
    pub fn threads_on(&self, core: CoreId) -> Vec<SimThreadId> {
        self.threads
            .iter()
            .zip(&self.pins)
            .filter(|&(_, &c)| c == core)
            .map(|(&t, _)| t)
            .collect()
    }
}

impl vulcan_json::Snapshot for Topology {
    /// Dense thread order is preserved: `threads_on` and the pin tables
    /// iterate it, so a restored topology must list threads in the same
    /// order they were pinned.
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        let threads: Vec<u64> = self.threads.iter().map(|t| t.0 as u64).collect();
        let pins: Vec<u64> = self.pins.iter().map(|c| c.0 as u64).collect();
        snap::obj(vec![
            ("n_cores", snap::u64_value(self.n_cores as u64)),
            ("threads", snap::u64_array(&threads)),
            ("pins", snap::u64_array(&pins)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        let n_cores = u16::try_from(snap::field_u64(v, "n_cores")?)
            .map_err(|_| "n_cores out of u16 range".to_string())?;
        let threads = snap::array_u64(snap::field(v, "threads")?)?;
        let pins = snap::array_u64(snap::field(v, "pins")?)?;
        if threads.len() != pins.len() {
            return Err("threads/pins length mismatch".into());
        }
        let mut topo = Topology::new(n_cores);
        for (&t, &c) in threads.iter().zip(&pins) {
            let t = u32::try_from(t).map_err(|_| "thread id out of u32 range".to_string())?;
            let c = u16::try_from(c)
                .ok()
                .filter(|&c| c < n_cores)
                .ok_or_else(|| format!("pin core {c} out of range 0..{n_cores}"))?;
            topo.pin(SimThreadId(t), CoreId(c));
        }
        Ok(topo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_and_lookup() {
        let mut topo = Topology::new(4);
        topo.pin(SimThreadId(7), CoreId(2));
        assert_eq!(topo.core_of(SimThreadId(7)), Some(CoreId(2)));
        assert_eq!(topo.core_of(SimThreadId(8)), None);
    }

    #[test]
    fn repin_moves_thread() {
        let mut topo = Topology::new(4);
        topo.pin(SimThreadId(1), CoreId(0));
        topo.pin(SimThreadId(1), CoreId(3));
        assert_eq!(topo.core_of(SimThreadId(1)), Some(CoreId(3)));
        assert_eq!(topo.threads().len(), 1);
    }

    #[test]
    fn pin_range_round_robin() {
        let mut topo = Topology::new(32);
        let ts: Vec<_> = (0..8).map(SimThreadId).collect();
        topo.pin_range(&ts, 8, 16);
        assert_eq!(topo.core_of(SimThreadId(0)), Some(CoreId(8)));
        assert_eq!(topo.core_of(SimThreadId(7)), Some(CoreId(15)));
        // Oversubscription wraps.
        let more: Vec<_> = (8..18).map(SimThreadId).collect();
        topo.pin_range(&more, 0, 4);
        assert_eq!(topo.core_of(SimThreadId(12)), Some(CoreId(0)));
    }

    #[test]
    fn targeted_core_set_smaller_than_occupied() {
        let mut topo = Topology::new(32);
        let ts: Vec<_> = (0..16).map(SimThreadId).collect();
        topo.pin_range(&ts, 0, 16);
        let private_owner = [SimThreadId(3)];
        assert_eq!(topo.cores_of(private_owner).len(), 1);
        assert_eq!(topo.occupied_cores().len(), 16);
    }

    #[test]
    fn threads_on_core() {
        let mut topo = Topology::new(2);
        topo.pin(SimThreadId(0), CoreId(0));
        topo.pin(SimThreadId(1), CoreId(0));
        topo.pin(SimThreadId(2), CoreId(1));
        assert_eq!(topo.threads_on(CoreId(0)).len(), 2);
        assert_eq!(topo.threads_on(CoreId(1)), vec![SimThreadId(2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pin_out_of_range_panics() {
        let mut topo = Topology::new(2);
        topo.pin(SimThreadId(0), CoreId(5));
    }
}
