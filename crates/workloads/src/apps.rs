//! The three representative applications of Table 2, scaled per
//! DESIGN.md §5 (1 paper-GB = 256 pages):
//!
//! | App       | Paper workload                          | RSS   | scaled  |
//! |-----------|------------------------------------------|-------|---------|
//! | Memcached | in-memory KV engine, YCSB-C-style        | 51 GB | 13 056 p|
//! | PageRank  | web-graph PageRank                       | 42 GB | 10 752 p|
//! | Liblinear | linear classification of KDD12           | 69 GB | 17 664 p|
//!
//! Memcached is latency-critical: 90% GETs / 10% SETs with a hot key set
//! receiving 90% of accesses (§5.3), sparse accesses separated by
//! network/parse time. Liblinear is the canonical best-effort antagonist:
//! tight sequential sweeps over a large private shard with a small shared
//! model — enormous raw access counts that monopolize hotness-ranked fast
//! memory (the trigger of the cold-page dilemma, §2.2). PageRank sits in
//! between: private edge scans plus skewed shared rank lookups.

use crate::gen::{shard, AccessGen, PageAccess};
use crate::zipf::Zipf;
use rand::rngs::SmallRng;
use rand::Rng;
use vulcan_sim::Nanos;

// ---------------------------------------------------------------------------

/// Configuration of the Memcached-like KV store.
#[derive(Clone, Debug)]
pub struct KvConfig {
    /// Total resident pages (values + index).
    pub rss_pages: u64,
    /// Fraction of operations that are GETs (paper: 0.9).
    pub get_ratio: f64,
    /// Fraction of keys forming the hot set (the paper's "hot key set"
    /// receives 90% of accesses; its size is not given — 0.45 of the
    /// keyspace reproduces Figure 1's solo hot-page ratio while keeping
    /// per-page heat below the BE sweeps' (the dilemma's trigger).
    pub hot_fraction: f64,
    /// Probability an op targets the hot set (paper: 0.9).
    pub hot_access_prob: f64,
    /// Fraction of RSS holding the index (hash table + LRU lists).
    pub index_fraction: f64,
    /// Index page touches per op (bucket walk).
    pub index_accesses: usize,
    /// Value page touches per op (values span multiple lines).
    pub value_accesses: usize,
    /// Pages per value (larger objects span pages, diluting per-page
    /// heat — the property that makes LC pages look "cold" next to a
    /// streaming BE workload).
    pub value_span: u64,
    /// Network receive/parse/respond time per op.
    pub fixed_op: Nanos,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            rss_pages: 13_056, // 51 GB scaled
            get_ratio: 0.9,
            hot_fraction: 0.45,
            hot_access_prob: 0.9,
            index_fraction: 0.02,
            index_accesses: 3,
            value_accesses: 6,
            value_span: 2,
            fixed_op: Nanos(3_000),
        }
    }
}

/// Memcached-like generator. All pages are shared: any worker thread can
/// serve any key.
#[derive(Clone, Debug)]
pub struct KvStore {
    cfg: KvConfig,
    index_pages: u64,
    n_values: u64,
    hot_values: u64,
    index_zipf: Zipf,
}

impl KvStore {
    /// Build from config.
    pub fn new(cfg: KvConfig) -> Self {
        assert!(cfg.rss_pages >= 64, "KV store needs a non-trivial RSS");
        assert!(cfg.value_span >= 1);
        let index_pages = ((cfg.rss_pages as f64 * cfg.index_fraction) as u64).max(1);
        let data_pages = cfg.rss_pages - index_pages;
        let n_values = (data_pages / cfg.value_span).max(1);
        let hot_values = ((n_values as f64 * cfg.hot_fraction) as u64).max(1);
        // Upper index levels are hotter than leaves: mild skew.
        let index_zipf = Zipf::new(index_pages, 0.6);
        KvStore {
            cfg,
            index_pages,
            n_values,
            hot_values,
            index_zipf,
        }
    }

    /// Pages in the hot data set (for test assertions).
    pub fn hot_pages(&self) -> u64 {
        self.hot_values * self.cfg.value_span
    }
}

impl AccessGen for KvStore {
    fn next_op(&mut self, _tid: usize, rng: &mut SmallRng, out: &mut Vec<PageAccess>) {
        // Index walk (always reads).
        for _ in 0..self.cfg.index_accesses {
            out.push(PageAccess::read(self.index_zipf.sample(rng)));
        }
        // Key selection: hot set with probability `hot_access_prob`.
        let value = if rng.gen::<f64>() < self.cfg.hot_access_prob {
            rng.gen_range(0..self.hot_values)
        } else {
            rng.gen_range(self.hot_values..self.n_values)
        };
        let base = self.index_pages + value * self.cfg.value_span;
        let write = rng.gen::<f64>() >= self.cfg.get_ratio; // SET path
        for i in 0..self.cfg.value_accesses {
            let offset = base + (i as u64 % self.cfg.value_span);
            out.push(PageAccess { offset, write });
        }
    }

    fn rss_pages(&self) -> u64 {
        self.cfg.rss_pages
    }

    fn fixed_op_nanos(&self) -> Nanos {
        self.cfg.fixed_op
    }
}

// ---------------------------------------------------------------------------

/// Configuration of the PageRank-like graph workload.
#[derive(Clone, Debug)]
pub struct PrConfig {
    /// Total resident pages (ranks + next ranks + edges).
    pub rss_pages: u64,
    /// Number of worker threads (edge/next-rank shards are per-thread).
    pub n_threads: usize,
    /// Fraction of RSS holding the (shared, read-hot) rank array.
    pub rank_fraction: f64,
    /// Sequential edge-page reads per op.
    pub edge_reads: usize,
    /// Random rank-page reads per op (in-degree skew).
    pub rank_reads: usize,
    /// Zipf exponent of rank lookups (power-law web graph).
    pub rank_skew: f64,
    /// Compute time per edge batch.
    pub fixed_op: Nanos,
}

impl Default for PrConfig {
    fn default() -> Self {
        PrConfig {
            rss_pages: 10_752, // 42 GB scaled
            n_threads: 8,
            rank_fraction: 0.15,
            edge_reads: 4,
            rank_reads: 4,
            rank_skew: 0.9,
            fixed_op: Nanos(300),
        }
    }
}

/// PageRank generator: per-thread sequential scans over private edge
/// shards, skewed reads of the shared rank array, and private writes to
/// the next-rank shard.
#[derive(Clone, Debug)]
pub struct PageRank {
    cfg: PrConfig,
    rank_pages: u64,
    next_base: u64,
    edge_base: u64,
    edge_pages: u64,
    rank_zipf: Zipf,
    /// Per-thread sequential cursor within its edge shard.
    edge_cursor: Vec<u64>,
    /// Per-thread cursor within its next-rank shard.
    next_cursor: Vec<u64>,
}

impl PageRank {
    /// Build from config.
    pub fn new(cfg: PrConfig) -> Self {
        assert!(cfg.n_threads > 0);
        assert!(cfg.rss_pages >= 64);
        let rank_pages = ((cfg.rss_pages as f64 * cfg.rank_fraction) as u64).max(1);
        let next_base = rank_pages;
        let edge_base = 2 * rank_pages;
        let edge_pages = cfg.rss_pages - edge_base;
        let rank_zipf = Zipf::new(rank_pages, cfg.rank_skew);
        PageRank {
            edge_cursor: vec![0; cfg.n_threads],
            next_cursor: vec![0; cfg.n_threads],
            cfg,
            rank_pages,
            next_base,
            edge_base,
            edge_pages,
            rank_zipf,
        }
    }
}

impl AccessGen for PageRank {
    fn next_op(&mut self, tid: usize, rng: &mut SmallRng, out: &mut Vec<PageAccess>) {
        let (es, ee) = shard(self.edge_pages, self.cfg.n_threads, tid);
        let span = (ee - es).max(1);
        // Sequential private edge reads.
        for _ in 0..self.cfg.edge_reads {
            let off = self.edge_base + es + self.edge_cursor[tid] % span;
            out.push(PageAccess::read(off));
            self.edge_cursor[tid] += 1;
        }
        // Skewed shared rank reads.
        for _ in 0..self.cfg.rank_reads {
            out.push(PageAccess::read(self.rank_zipf.sample(rng)));
        }
        // Private next-rank accumulation (write).
        let (ns, ne) = shard(self.rank_pages, self.cfg.n_threads, tid);
        let nspan = (ne - ns).max(1);
        let off = self.next_base + ns + self.next_cursor[tid] % nspan;
        out.push(PageAccess::write(off));
        if self.edge_cursor[tid].is_multiple_of(8) {
            self.next_cursor[tid] += 1;
        }
    }

    fn rss_pages(&self) -> u64 {
        self.cfg.rss_pages
    }

    fn fixed_op_nanos(&self) -> Nanos {
        self.cfg.fixed_op
    }

    fn snapshot_state(&self) -> vulcan_json::Value {
        vulcan_json::snap::obj(vec![
            (
                "edge_cursor",
                vulcan_json::snap::u64_array(&self.edge_cursor),
            ),
            (
                "next_cursor",
                vulcan_json::snap::u64_array(&self.next_cursor),
            ),
        ])
    }

    fn restore_state(&mut self, v: &vulcan_json::Value) -> Result<(), String> {
        use vulcan_json::snap;
        let edge = snap::array_u64(snap::field(v, "edge_cursor")?)?;
        let next = snap::array_u64(snap::field(v, "next_cursor")?)?;
        if edge.len() != self.cfg.n_threads || next.len() != self.cfg.n_threads {
            return Err(format!(
                "pagerank cursor arrays sized for {} threads, generator has {}",
                edge.len(),
                self.cfg.n_threads
            ));
        }
        self.edge_cursor = edge;
        self.next_cursor = next;
        Ok(())
    }
}

// ---------------------------------------------------------------------------

/// Configuration of the Liblinear-like training sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Total resident pages (model + training data).
    pub rss_pages: u64,
    /// Worker threads (data shards are per-thread).
    pub n_threads: usize,
    /// Fraction of RSS holding the shared model.
    pub model_fraction: f64,
    /// Sequential data reads per op.
    pub sweep_reads: usize,
    /// Probability a model touch is a write (gradient update).
    pub model_write_prob: f64,
    /// Compute per chunk (dot products are cheap relative to the scan).
    pub fixed_op: Nanos,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            rss_pages: 17_664, // 69 GB scaled
            n_threads: 8,
            model_fraction: 0.04,
            sweep_reads: 12,
            model_write_prob: 0.5,
            fixed_op: Nanos(100),
        }
    }
}

/// Liblinear-like generator: each coordinate-descent pass sweeps the full
/// per-thread data shard sequentially and touches the small shared model.
/// Almost no off-memory time — the sustained intensity that makes its
/// working set look "persistently hot" to absolute-count profilers.
#[derive(Clone, Debug)]
pub struct Sweep {
    cfg: SweepConfig,
    model_pages: u64,
    data_pages: u64,
    cursor: Vec<u64>,
}

impl Sweep {
    /// Build from config.
    pub fn new(cfg: SweepConfig) -> Self {
        assert!(cfg.n_threads > 0);
        assert!(cfg.rss_pages >= 64);
        let model_pages = ((cfg.rss_pages as f64 * cfg.model_fraction) as u64).max(1);
        let data_pages = cfg.rss_pages - model_pages;
        Sweep {
            cursor: vec![0; cfg.n_threads],
            cfg,
            model_pages,
            data_pages,
        }
    }
}

impl AccessGen for Sweep {
    fn next_op(&mut self, tid: usize, rng: &mut SmallRng, out: &mut Vec<PageAccess>) {
        let (s, e) = shard(self.data_pages, self.cfg.n_threads, tid);
        let span = (e - s).max(1);
        for _ in 0..self.cfg.sweep_reads {
            let off = self.model_pages + s + self.cursor[tid] % span;
            out.push(PageAccess::read(off));
            self.cursor[tid] += 1;
        }
        let model_off = rng.gen_range(0..self.model_pages);
        let write = rng.gen::<f64>() < self.cfg.model_write_prob;
        out.push(PageAccess {
            offset: model_off,
            write,
        });
    }

    fn rss_pages(&self) -> u64 {
        self.cfg.rss_pages
    }

    fn fixed_op_nanos(&self) -> Nanos {
        self.cfg.fixed_op
    }

    fn snapshot_state(&self) -> vulcan_json::Value {
        vulcan_json::snap::obj(vec![("cursor", vulcan_json::snap::u64_array(&self.cursor))])
    }

    fn restore_state(&mut self, v: &vulcan_json::Value) -> Result<(), String> {
        use vulcan_json::snap;
        let cursor = snap::array_u64(snap::field(v, "cursor")?)?;
        if cursor.len() != self.cfg.n_threads {
            return Err(format!(
                "sweep cursor array sized for {} threads, generator has {}",
                cursor.len(),
                self.cfg.n_threads
            ));
        }
        self.cursor = cursor;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Config serialization: exact field inventories with bit-exact floats, so
// a checkpointed spec rebuilds byte-identical generators.

impl vulcan_json::Snapshot for KvConfig {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        snap::obj(vec![
            ("rss_pages", snap::u64_value(self.rss_pages)),
            ("get_ratio", snap::f64_value(self.get_ratio)),
            ("hot_fraction", snap::f64_value(self.hot_fraction)),
            ("hot_access_prob", snap::f64_value(self.hot_access_prob)),
            ("index_fraction", snap::f64_value(self.index_fraction)),
            (
                "index_accesses",
                snap::u64_value(self.index_accesses as u64),
            ),
            (
                "value_accesses",
                snap::u64_value(self.value_accesses as u64),
            ),
            ("value_span", snap::u64_value(self.value_span)),
            ("fixed_op", snap::u64_value(self.fixed_op.0)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        Ok(KvConfig {
            rss_pages: snap::field_u64(v, "rss_pages")?,
            get_ratio: snap::field_f64(v, "get_ratio")?,
            hot_fraction: snap::field_f64(v, "hot_fraction")?,
            hot_access_prob: snap::field_f64(v, "hot_access_prob")?,
            index_fraction: snap::field_f64(v, "index_fraction")?,
            index_accesses: snap::field_usize(v, "index_accesses")?,
            value_accesses: snap::field_usize(v, "value_accesses")?,
            value_span: snap::field_u64(v, "value_span")?,
            fixed_op: Nanos(snap::field_u64(v, "fixed_op")?),
        })
    }
}

impl vulcan_json::Snapshot for PrConfig {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        snap::obj(vec![
            ("rss_pages", snap::u64_value(self.rss_pages)),
            ("n_threads", snap::u64_value(self.n_threads as u64)),
            ("rank_fraction", snap::f64_value(self.rank_fraction)),
            ("edge_reads", snap::u64_value(self.edge_reads as u64)),
            ("rank_reads", snap::u64_value(self.rank_reads as u64)),
            ("rank_skew", snap::f64_value(self.rank_skew)),
            ("fixed_op", snap::u64_value(self.fixed_op.0)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        Ok(PrConfig {
            rss_pages: snap::field_u64(v, "rss_pages")?,
            n_threads: snap::field_usize(v, "n_threads")?,
            rank_fraction: snap::field_f64(v, "rank_fraction")?,
            edge_reads: snap::field_usize(v, "edge_reads")?,
            rank_reads: snap::field_usize(v, "rank_reads")?,
            rank_skew: snap::field_f64(v, "rank_skew")?,
            fixed_op: Nanos(snap::field_u64(v, "fixed_op")?),
        })
    }
}

impl vulcan_json::Snapshot for SweepConfig {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        snap::obj(vec![
            ("rss_pages", snap::u64_value(self.rss_pages)),
            ("n_threads", snap::u64_value(self.n_threads as u64)),
            ("model_fraction", snap::f64_value(self.model_fraction)),
            ("sweep_reads", snap::u64_value(self.sweep_reads as u64)),
            ("model_write_prob", snap::f64_value(self.model_write_prob)),
            ("fixed_op", snap::u64_value(self.fixed_op.0)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        Ok(SweepConfig {
            rss_pages: snap::field_u64(v, "rss_pages")?,
            n_threads: snap::field_usize(v, "n_threads")?,
            model_fraction: snap::field_f64(v, "model_fraction")?,
            sweep_reads: snap::field_usize(v, "sweep_reads")?,
            model_write_prob: snap::field_f64(v, "model_write_prob")?,
            fixed_op: Nanos(snap::field_u64(v, "fixed_op")?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn run_ops<G: AccessGen>(g: &mut G, tid: usize, n: usize) -> Vec<PageAccess> {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut all = Vec::new();
        let mut op = Vec::new();
        for _ in 0..n {
            op.clear();
            g.next_op(tid, &mut rng, &mut op);
            assert!(!op.is_empty());
            all.extend_from_slice(&op);
        }
        all
    }

    #[test]
    fn kv_offsets_stay_in_rss() {
        let mut kv = KvStore::new(KvConfig::default());
        for a in run_ops(&mut kv, 0, 2_000) {
            assert!(a.offset < kv.rss_pages());
        }
    }

    #[test]
    fn kv_hot_set_receives_most_data_accesses() {
        let mut kv = KvStore::new(KvConfig::default());
        let index_pages = ((13_056f64 * 0.02) as u64).max(1);
        let accesses = run_ops(&mut kv, 0, 10_000);
        let data: Vec<&PageAccess> = accesses
            .iter()
            .filter(|a| a.offset >= index_pages)
            .collect();
        let hot = data
            .iter()
            .filter(|a| a.offset - index_pages < kv.hot_pages())
            .count();
        let ratio = hot as f64 / data.len() as f64;
        assert!((0.85..=0.95).contains(&ratio), "hot ratio {ratio}");
    }

    #[test]
    fn kv_write_ratio_matches_set_fraction() {
        let mut kv = KvStore::new(KvConfig::default());
        let accesses = run_ops(&mut kv, 0, 10_000);
        let writes = accesses.iter().filter(|a| a.write).count() as f64;
        let value_accesses = accesses.len() as f64 * 6.0 / 9.0; // 6 of 9 per op
        let ratio = writes / value_accesses;
        assert!((0.07..=0.13).contains(&ratio), "SET ratio {ratio}");
    }

    #[test]
    fn kv_values_span_pages() {
        let mut kv = KvStore::new(KvConfig::default());
        let mut rng = SmallRng::seed_from_u64(5);
        let mut op = Vec::new();
        kv.next_op(0, &mut rng, &mut op);
        let value: std::collections::BTreeSet<u64> = op[3..].iter().map(|a| a.offset).collect();
        assert_eq!(value.len(), 2, "value accesses over a 2-page value");
    }

    #[test]
    fn pagerank_separates_private_shards() {
        let cfg = PrConfig::default();
        let rank_pages = ((cfg.rss_pages as f64 * cfg.rank_fraction) as u64).max(1);
        let edge_base = 2 * rank_pages;
        let edge_pages = cfg.rss_pages - edge_base;
        let mut pr = PageRank::new(cfg);
        let a0 = run_ops(&mut pr, 0, 1_000);
        let a7 = run_ops(&mut pr, 7, 1_000);
        let edges0: std::collections::BTreeSet<u64> = a0
            .iter()
            .filter(|a| a.offset >= edge_base)
            .map(|a| a.offset)
            .collect();
        let edges7: std::collections::BTreeSet<u64> = a7
            .iter()
            .filter(|a| a.offset >= edge_base)
            .map(|a| a.offset)
            .collect();
        assert!(edges0.is_disjoint(&edges7), "edge shards are private");
        let _ = edge_pages;
        for a in a0.iter().chain(&a7) {
            assert!(a.offset < pr.rss_pages());
        }
    }

    #[test]
    fn pagerank_writes_only_own_next_ranks() {
        let mut pr = PageRank::new(PrConfig::default());
        let rank_pages = ((10_752f64 * 0.15) as u64).max(1);
        let a3 = run_ops(&mut pr, 3, 500);
        let writes: Vec<&PageAccess> = a3.iter().filter(|a| a.write).collect();
        assert!(!writes.is_empty());
        let (ns, ne) = shard(rank_pages, 8, 3);
        for w in writes {
            assert!(w.offset >= rank_pages + ns && w.offset < rank_pages + ne);
        }
    }

    #[test]
    fn sweep_covers_its_shard_sequentially() {
        let cfg = SweepConfig {
            rss_pages: 1_000,
            n_threads: 4,
            ..Default::default()
        };
        let model_pages = ((1_000f64 * 0.04) as u64).max(1);
        let mut sw = Sweep::new(cfg);
        let accesses = run_ops(&mut sw, 1, 2_000);
        let data: Vec<u64> = accesses
            .iter()
            .filter(|a| a.offset >= model_pages && !a.write)
            .map(|a| a.offset)
            .collect();
        let distinct: std::collections::BTreeSet<u64> = data.iter().copied().collect();
        let (s, e) = shard(1_000 - model_pages, 4, 1);
        // 2000 ops × 8 reads cover the ~240-page shard many times over.
        assert_eq!(distinct.len() as u64, e - s, "full shard coverage");
    }

    #[test]
    fn sweep_is_memory_bound() {
        let sw = Sweep::new(SweepConfig::default());
        let kv = KvStore::new(KvConfig::default());
        assert!(
            sw.fixed_op_nanos().0 * 10 < kv.fixed_op_nanos().0,
            "BE sweep has far less off-memory time per op than the LC service"
        );
    }

    #[test]
    fn table2_rss_values_scaled() {
        assert_eq!(KvStore::new(KvConfig::default()).rss_pages(), 13_056);
        assert_eq!(PageRank::new(PrConfig::default()).rss_pages(), 10_752);
        assert_eq!(Sweep::new(SweepConfig::default()).rss_pages(), 17_664);
    }
}
