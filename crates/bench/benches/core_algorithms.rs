//! Criterion benchmarks of Vulcan's decision algorithms: CBFRP rounds,
//! promotion-queue refill/drain, and the QoS math — the per-quantum
//! daemon work whose cost §3.6 worries about for FaaS-like churn.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use vulcan::core::{Cbfrp, Classifier, PageClass, PromotionQueues, ServiceClass};
use vulcan::prelude::*;

fn bench_cbfrp(c: &mut Criterion) {
    let mut g = c.benchmark_group("cbfrp");
    for n in [4usize, 16, 64] {
        g.throughput(Throughput::Elements(n as u64));
        let classes: Vec<ServiceClass> = (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    ServiceClass::LatencyCritical
                } else {
                    ServiceClass::BestEffort
                }
            })
            .collect();
        let active = vec![true; n];
        g.bench_function(format!("partition_{n}_workloads"), |b| {
            let mut cbfrp = Cbfrp::new(n, 64);
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                let demands: Vec<u64> = (0..n)
                    .map(|i| ((i as u64 * 977 + round * 131) % 4_096) * 2)
                    .collect();
                black_box(cbfrp.partition(&demands, &classes, &active, 2_048))
            })
        });
    }
    g.finish();
}

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("promotion_queues");
    for n in [1_000u64, 10_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_function(format!("refill_drain_{n}_pages"), |b| {
            let mut q = PromotionQueues::new();
            b.iter(|| {
                q.refill((0..n).map(|i| {
                    let class = match i % 4 {
                        0 => PageClass::PrivateRead,
                        1 => PageClass::SharedRead,
                        2 => PageClass::PrivateWrite,
                        _ => PageClass::SharedWrite,
                    };
                    (Vpn(i), class, (i % 97) as f64)
                }));
                black_box(q.drain(512))
            })
        });
    }
    g.finish();
}

fn bench_classifier(c: &mut Criterion) {
    let mut g = c.benchmark_group("classifier");
    g.throughput(Throughput::Elements(64));
    g.bench_function("observe_64_workloads", |b| {
        let mut cls = Classifier::new(64);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            for i in 0..64 {
                cls.observe(i, ((i as u64 + t) % 100) as f64 / 100.0);
            }
            black_box(cls.classes().len())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cbfrp, bench_queues, bench_classifier
}
criterion_main!(benches);
