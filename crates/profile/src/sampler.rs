//! Profiling mechanisms (§2.1): PEBS-like event sampling, page-table
//! scanning, NUMA hinting faults, and the hybrid profiler Vulcan uses by
//! default (performance counters + hint faults, inspired by FlexMem).
//!
//! Each mechanism trades accuracy for overhead differently — the paper's
//! §2.1 concludes "none provide a universal solution", which is why the
//! daemon decouples the choice per workload (§3.2).

use crate::heat::HeatMap;
use vulcan_sim::{Cycles, Nanos};
use vulcan_vm::{AddressSpace, Vpn};

/// Result of one profiling epoch.
#[derive(Clone, Debug, Default)]
pub struct EpochOutcome {
    /// Daemon-side cycle cost of the epoch.
    pub cycles: Cycles,
    /// Pages freshly poisoned for hinting faults — the runtime must
    /// invalidate their TLB entries so the next access actually faults
    /// (real kernels flush when installing the hint PTE).
    pub poisoned: Vec<Vpn>,
}

impl EpochOutcome {
    /// An epoch that only cost cycles.
    pub fn cost(cycles: Cycles) -> Self {
        EpochOutcome {
            cycles,
            poisoned: Vec::new(),
        }
    }
}

/// One batched access plane handed to a profiler at a chunk boundary.
///
/// The plane *is* the event stream: every access produced exactly one
/// `on_access(Vpn(offsets[i]), writes[i])` in the scalar path, and
/// `hints` lists (ascending) the plane indices whose access was
/// immediately preceded by an `on_hint_fault` with the same VPN and
/// write flag. Replaying the plane in index order therefore reproduces
/// the scalar event sequence bit for bit.
#[derive(Clone, Copy, Debug)]
pub struct AccessBatch<'a> {
    /// Page numbers, one per access, in issue order.
    pub offsets: &'a [u64],
    /// Write flags, parallel to `offsets`.
    pub writes: &'a [bool],
    /// Ascending plane indices that took a hint fault.
    pub hints: &'a [u32],
}

impl AccessBatch<'_> {
    /// Replay the plane through the per-event interface. This is the
    /// reference semantics every specialized `on_access_batch` must
    /// reproduce (and the oracle's lockstep comparand).
    pub fn replay_scalar<P: Profiler + ?Sized>(&self, p: &mut P) {
        let mut h = 0usize;
        for i in 0..self.offsets.len() {
            if h < self.hints.len() && self.hints[h] as usize == i {
                p.on_hint_fault(Vpn(self.offsets[i]), self.writes[i]);
                h += 1;
            }
            p.on_access(Vpn(self.offsets[i]), self.writes[i]);
        }
    }
}

/// A page-access profiler.
///
/// The runtime calls [`on_access`](Profiler::on_access) for every demand
/// access, [`on_hint_fault`](Profiler::on_hint_fault) when a poisoned PTE
/// faults, and [`epoch`](Profiler::epoch) at each profiling interval; the
/// returned cycles are charged to the daemon, not the application.
///
/// `Send` is a supertrait: profilers are per-workload state, and the
/// sharded execute phase moves each workload (profiler included) onto a
/// shard thread for the duration of a quantum.
pub trait Profiler: Send {
    /// Observe one demand access (the mechanism decides whether to sample).
    fn on_access(&mut self, vpn: Vpn, is_write: bool);

    /// Observe a hinting fault taken on a poisoned PTE.
    fn on_hint_fault(&mut self, vpn: Vpn, is_write: bool) {
        let _ = (vpn, is_write);
    }

    /// Observe a whole access plane at a batch boundary. Must be
    /// byte-equivalent to [`AccessBatch::replay_scalar`]; the default is
    /// exactly that replay, so implementations only override it to go
    /// faster (e.g. sampling countdown skip-ahead).
    fn on_access_batch(&mut self, batch: &AccessBatch) {
        batch.replay_scalar(self);
    }

    /// Per-epoch maintenance (scanning, poisoning, decay). Returns the
    /// daemon-side cycle cost and any pages poisoned this epoch.
    fn epoch(&mut self, space: &mut AddressSpace) -> EpochOutcome;

    /// Latency this mechanism adds to every (non-faulting) access.
    fn sampling_overhead(&self) -> Nanos {
        Nanos::ZERO
    }

    /// The accumulated heat map.
    fn heat(&self) -> &HeatMap;

    /// Mutable access to the heat map (policies forget migrated pages).
    fn heat_mut(&mut self) -> &mut HeatMap;
}

/// Default per-epoch heat decay (recency-vs-frequency balance).
pub const DEFAULT_DECAY: f64 = 0.7;

// ---------------------------------------------------------------------------

/// PEBS-style event sampling: every `period`-th access is recorded.
///
/// Cheap and precise at moderate scale but suffers false negatives when
/// the footprint is huge relative to the sampling rate (§2.1 cites
/// Telescope's terabyte-scale critique) — reproduced here naturally: a
/// page needs ≥`period` accesses per epoch to be reliably seen.
#[derive(Clone, Debug)]
pub struct PebsProfiler {
    period: u64,
    countdown: u64,
    heat: HeatMap,
    samples: u64,
}

impl PebsProfiler {
    /// Sample every `period`-th access (Memtis uses a similar budget).
    pub fn new(period: u64) -> Self {
        assert!(period > 0);
        PebsProfiler {
            period,
            countdown: period,
            heat: HeatMap::new(DEFAULT_DECAY),
            samples: 0,
        }
    }

    /// Total samples taken.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The sampling period.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Advance the sampling countdown across a run of accesses, touching
    /// only the sampled ones — O(samples) instead of O(accesses). The
    /// countdown stays in `[1, period]` on entry and exit, exactly as a
    /// per-access decrement loop would leave it.
    #[inline]
    fn advance(&mut self, offsets: &[u64], writes: &[bool]) {
        let n = offsets.len() as u64;
        let mut pos = 0u64;
        while self.countdown <= n - pos {
            pos += self.countdown;
            let i = (pos - 1) as usize;
            self.countdown = self.period;
            self.samples += 1;
            self.heat
                .record(Vpn(offsets[i]), writes[i], self.period as f64);
        }
        self.countdown -= n - pos;
    }
}

impl Profiler for PebsProfiler {
    fn on_access(&mut self, vpn: Vpn, is_write: bool) {
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.period;
            self.samples += 1;
            // One sample stands for `period` accesses.
            self.heat.record(vpn, is_write, self.period as f64);
        }
    }

    fn on_access_batch(&mut self, batch: &AccessBatch) {
        // Hint faults are a no-op for pure PEBS, so the plane reduces to
        // the countdown skip-ahead.
        self.advance(batch.offsets, batch.writes);
    }

    fn epoch(&mut self, _space: &mut AddressSpace) -> EpochOutcome {
        self.heat.decay_epoch();
        // Draining the PEBS buffer is cheap and amortized.
        EpochOutcome::cost(Cycles(2_000))
    }

    fn heat(&self) -> &HeatMap {
        &self.heat
    }

    fn heat_mut(&mut self) -> &mut HeatMap {
        &mut self.heat
    }
}

// ---------------------------------------------------------------------------

/// Page-table scanning: walk every mapped PTE each epoch, harvest and
/// clear accessed bits (Nimble / MULTI-CLOCK style). Accurate presence
/// signal, but the epoch cost is linear in RSS — the scalability problem
/// §2.1 notes.
#[derive(Clone, Debug)]
pub struct PtScanProfiler {
    heat: HeatMap,
    /// Cycles to test-and-clear one PTE during the scan.
    per_pte: Cycles,
    scans: u64,
    /// Scratch buffer of mapped VPNs, reused across epochs so each scan
    /// does not re-allocate a footprint-sized vector.
    scratch: Vec<Vpn>,
}

impl PtScanProfiler {
    /// A scanner with the default per-PTE cost (~30 cycles).
    pub fn new() -> Self {
        PtScanProfiler {
            heat: HeatMap::new(DEFAULT_DECAY),
            per_pte: Cycles(30),
            scans: 0,
            scratch: Vec::new(),
        }
    }

    /// Completed scan passes.
    pub fn scans(&self) -> u64 {
        self.scans
    }
}

impl Default for PtScanProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler for PtScanProfiler {
    fn on_access(&mut self, _vpn: Vpn, _is_write: bool) {
        // Scanning sees accesses only through PTE accessed bits.
    }

    fn on_access_batch(&mut self, _batch: &AccessBatch) {
        // No per-access state at all: whole planes are free.
    }

    fn epoch(&mut self, space: &mut AddressSpace) -> EpochOutcome {
        self.heat.decay_epoch();
        let mut vpns = std::mem::take(&mut self.scratch);
        vpns.clear();
        vpns.extend(space.mapped_vpns());
        let mut cost = Cycles::ZERO;
        for vpn in &vpns {
            let pte = space.pte(*vpn);
            cost += self.per_pte;
            if pte.accessed() {
                // One bit per epoch: scanning can't distinguish 1 access
                // from 1000 (its precision limitation), nor reads/writes
                // beyond the dirty bit.
                self.heat.record(*vpn, pte.dirty(), 1.0);
                space.set_pte(*vpn, pte.clear_accessed().clear_dirty());
            }
        }
        self.scratch = vpns;
        self.scans += 1;
        EpochOutcome::cost(cost)
    }

    fn heat(&self) -> &HeatMap {
        &self.heat
    }

    fn heat_mut(&mut self) -> &mut HeatMap {
        &mut self.heat
    }
}

// ---------------------------------------------------------------------------

/// NUMA hinting faults: each epoch poisons a window of mapped pages; the
/// next access to a poisoned page takes a minor fault that reports the
/// access precisely (AutoTiering / TPP style). Precise, but every sampled
/// access pays fault latency — the overhead the runtime charges via
/// [`vulcan_vm::TouchOutcome::hint_fault`].
#[derive(Clone, Debug)]
pub struct HintFaultProfiler {
    heat: HeatMap,
    /// Fraction of mapped pages poisoned each epoch.
    poison_fraction: f64,
    /// Rotating start offset so successive epochs cover different pages.
    cursor: u64,
    faults: u64,
    /// Scratch buffer of mapped VPNs, reused across epochs so each
    /// poisoning pass does not re-allocate a footprint-sized vector.
    scratch: Vec<Vpn>,
}

impl HintFaultProfiler {
    /// Poison `poison_fraction` of the RSS each epoch.
    pub fn new(poison_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&poison_fraction));
        HintFaultProfiler {
            heat: HeatMap::new(DEFAULT_DECAY),
            poison_fraction,
            cursor: 0,
            faults: 0,
            scratch: Vec::new(),
        }
    }

    /// Hint faults observed.
    pub fn faults(&self) -> u64 {
        self.faults
    }
}

impl Profiler for HintFaultProfiler {
    fn on_access(&mut self, _vpn: Vpn, _is_write: bool) {}

    fn on_hint_fault(&mut self, vpn: Vpn, is_write: bool) {
        self.faults += 1;
        // A fault on a poisoned page witnesses roughly one epoch-window
        // of accesses; weight higher than a scan bit.
        self.heat.record(vpn, is_write, 4.0);
    }

    fn on_access_batch(&mut self, batch: &AccessBatch) {
        // `on_access` is a no-op, so only the hint positions matter.
        for &h in batch.hints {
            let i = h as usize;
            self.on_hint_fault(Vpn(batch.offsets[i]), batch.writes[i]);
        }
    }

    fn epoch(&mut self, space: &mut AddressSpace) -> EpochOutcome {
        self.heat.decay_epoch();
        let mut vpns = std::mem::take(&mut self.scratch);
        vpns.clear();
        vpns.extend(space.mapped_vpns());
        if vpns.is_empty() {
            self.scratch = vpns;
            return EpochOutcome::default();
        }
        let n = ((vpns.len() as f64 * self.poison_fraction).ceil() as usize).max(1);
        let start = (self.cursor as usize) % vpns.len();
        let mut cost = Cycles::ZERO;
        let mut poisoned = Vec::with_capacity(n);
        for i in 0..n.min(vpns.len()) {
            let vpn = vpns[(start + i) % vpns.len()];
            let pte = space.pte(vpn);
            space.set_pte(vpn, pte.with_poisoned(true));
            poisoned.push(vpn);
            cost += Cycles(150); // PTE write + local flush
        }
        self.cursor = self.cursor.wrapping_add(n as u64);
        self.scratch = vpns;
        EpochOutcome {
            cycles: cost,
            poisoned,
        }
    }

    fn heat(&self) -> &HeatMap {
        &self.heat
    }

    fn heat_mut(&mut self) -> &mut HeatMap {
        &mut self.heat
    }
}

// ---------------------------------------------------------------------------

/// Vulcan's default: PEBS sampling fused with hinting faults (§3.2,
/// "hybrid profiling approach that integrates performance counter-based
/// profiling and page hinting fault-based profiling", after FlexMem).
///
/// PEBS provides broad, cheap coverage; hint faults add precise
/// confirmation for a rotating window, overcoming sampling's false
/// negatives on large, moderately-warm footprints.
#[derive(Clone, Debug)]
pub struct HybridProfiler {
    pebs: PebsProfiler,
    hint: HintFaultProfiler,
}

impl HybridProfiler {
    /// Hybrid with the given PEBS period and hint-fault window fraction.
    pub fn new(pebs_period: u64, poison_fraction: f64) -> Self {
        HybridProfiler {
            pebs: PebsProfiler::new(pebs_period),
            hint: HintFaultProfiler::new(poison_fraction),
        }
    }

    /// Vulcan's default configuration.
    pub fn vulcan_default() -> Self {
        HybridProfiler::new(64, 0.05)
    }
}

impl Profiler for HybridProfiler {
    fn on_access(&mut self, vpn: Vpn, is_write: bool) {
        self.pebs.on_access(vpn, is_write);
    }

    fn on_hint_fault(&mut self, vpn: Vpn, is_write: bool) {
        // Fold the precise signal into the shared (PEBS) heat map so
        // policies read a single fused view.
        self.hint.faults += 1;
        self.pebs.heat.record(vpn, is_write, 4.0);
    }

    fn on_access_batch(&mut self, batch: &AccessBatch) {
        // Hint faults interleave with the sampled stream in plane order
        // (hint i fires just before access i), so the heat-map record
        // sequence — and with it every f64 sum — matches the scalar
        // path: skip-ahead between hint positions, per-event at them.
        let mut start = 0usize;
        for &h in batch.hints {
            let h = h as usize;
            self.pebs
                .advance(&batch.offsets[start..h], &batch.writes[start..h]);
            self.on_hint_fault(Vpn(batch.offsets[h]), batch.writes[h]);
            self.pebs
                .advance(&batch.offsets[h..=h], &batch.writes[h..=h]);
            start = h + 1;
        }
        self.pebs
            .advance(&batch.offsets[start..], &batch.writes[start..]);
    }

    fn epoch(&mut self, space: &mut AddressSpace) -> EpochOutcome {
        let a = self.pebs.epoch(space);
        let mut b = self.hint.epoch(space);
        b.cycles += a.cycles;
        b
    }

    fn heat(&self) -> &HeatMap {
        &self.pebs.heat
    }

    fn heat_mut(&mut self) -> &mut HeatMap {
        &mut self.pebs.heat
    }
}

impl vulcan_json::Snapshot for PebsProfiler {
    /// The countdown is the profiler's position inside its sampling
    /// stride — hidden state that decides *which* future access is the
    /// next sample, so it must travel for restore-replay identity.
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        snap::obj(vec![
            ("period", snap::u64_value(self.period)),
            ("countdown", snap::u64_value(self.countdown)),
            ("samples", snap::u64_value(self.samples)),
            ("heat", self.heat.snapshot()),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        let period = snap::field_u64(v, "period")?;
        if period == 0 {
            return Err("PEBS period must be positive".into());
        }
        let countdown = snap::field_u64(v, "countdown")?;
        if countdown == 0 || countdown > period {
            return Err(format!("countdown {countdown} outside [1, {period}]"));
        }
        Ok(PebsProfiler {
            period,
            countdown,
            heat: HeatMap::restore(snap::field(v, "heat")?)?,
            samples: snap::field_u64(v, "samples")?,
        })
    }
}

impl vulcan_json::Snapshot for PtScanProfiler {
    /// The scratch buffer is reuse-only (cleared before every scan), so
    /// it restores empty.
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        snap::obj(vec![
            ("per_pte", snap::u64_value(self.per_pte.0)),
            ("scans", snap::u64_value(self.scans)),
            ("heat", self.heat.snapshot()),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        Ok(PtScanProfiler {
            heat: HeatMap::restore(snap::field(v, "heat")?)?,
            per_pte: Cycles(snap::field_u64(v, "per_pte")?),
            scans: snap::field_u64(v, "scans")?,
            scratch: Vec::new(),
        })
    }
}

impl vulcan_json::Snapshot for HintFaultProfiler {
    /// The rotating cursor decides which window poisons next epoch —
    /// hidden state with direct downstream effect on fault timing.
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        snap::obj(vec![
            ("poison_fraction", snap::f64_value(self.poison_fraction)),
            ("cursor", snap::u64_value(self.cursor)),
            ("faults", snap::u64_value(self.faults)),
            ("heat", self.heat.snapshot()),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        let poison_fraction = snap::field_f64(v, "poison_fraction")?;
        if !(0.0..=1.0).contains(&poison_fraction) {
            return Err(format!("poison_fraction {poison_fraction} out of [0,1]"));
        }
        Ok(HintFaultProfiler {
            heat: HeatMap::restore(snap::field(v, "heat")?)?,
            poison_fraction,
            cursor: snap::field_u64(v, "cursor")?,
            faults: snap::field_u64(v, "faults")?,
            scratch: Vec::new(),
        })
    }
}

impl vulcan_json::Snapshot for HybridProfiler {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        snap::obj(vec![
            ("pebs", self.pebs.snapshot()),
            ("hint", self.hint.snapshot()),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        Ok(HybridProfiler {
            pebs: PebsProfiler::restore(snap::field(v, "pebs")?)?,
            hint: HintFaultProfiler::restore(snap::field(v, "hint")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulcan_sim::{FrameId, TierKind};
    use vulcan_vm::LocalTid;

    fn space_with_pages(n: u64) -> AddressSpace {
        let mut s = AddressSpace::new(false);
        for v in 0..n {
            s.map(
                Vpn(v),
                FrameId {
                    tier: TierKind::Slow,
                    index: v as u32,
                },
                LocalTid(0),
            );
        }
        s
    }

    #[test]
    fn pebs_samples_every_period() {
        let mut p = PebsProfiler::new(10);
        for _ in 0..100 {
            p.on_access(Vpn(1), false);
        }
        assert_eq!(p.samples(), 10);
        assert_eq!(p.heat().get(Vpn(1)).heat, 100.0, "weighted by period");
    }

    #[test]
    fn pebs_misses_infrequent_pages() {
        let mut p = PebsProfiler::new(100);
        // 99 accesses: below the period, never sampled.
        for _ in 0..99 {
            p.on_access(Vpn(7), false);
        }
        assert_eq!(p.samples(), 0, "false negative by design");
    }

    #[test]
    fn ptscan_harvests_and_clears_accessed_bits() {
        let mut s = space_with_pages(4);
        s.touch(Vpn(0), LocalTid(0), false).unwrap();
        s.touch(Vpn(1), LocalTid(0), true).unwrap();
        let mut p = PtScanProfiler::new();
        let out = p.epoch(&mut s);
        assert!(out.cycles.0 >= 4 * 30);
        assert_eq!(p.heat().get(Vpn(0)).heat, 1.0);
        assert!(p.heat().get(Vpn(1)).write_ratio() > 0.0);
        assert_eq!(p.heat().get(Vpn(2)).heat, 0.0);
        assert!(!s.pte(Vpn(0)).accessed(), "bit cleared for next epoch");
        assert_eq!(p.scans(), 1);
    }

    #[test]
    fn ptscan_cost_scales_with_rss() {
        let mut small = space_with_pages(10);
        let mut large = space_with_pages(1000);
        let mut p1 = PtScanProfiler::new();
        let mut p2 = PtScanProfiler::new();
        assert!(p2.epoch(&mut large).cycles.0 > 50 * p1.epoch(&mut small).cycles.0);
    }

    #[test]
    fn hint_fault_poisons_rotating_window() {
        let mut s = space_with_pages(100);
        let mut p = HintFaultProfiler::new(0.1);
        let out = p.epoch(&mut s);
        assert_eq!(out.poisoned.len(), 10, "epoch reports poisoned pages");
        let poisoned: Vec<Vpn> = s.mapped_vpns().filter(|&v| s.pte(v).poisoned()).collect();
        assert_eq!(poisoned.len(), 10);
        // Next epoch poisons a different window.
        p.epoch(&mut s);
        let poisoned2: usize = s.mapped_vpns().filter(|&v| s.pte(v).poisoned()).count();
        assert_eq!(poisoned2, 20, "windows rotate, first batch still set");
    }

    #[test]
    fn hint_fault_records_heat() {
        let mut p = HintFaultProfiler::new(0.1);
        p.on_hint_fault(Vpn(3), true);
        assert_eq!(p.faults(), 1);
        assert!(p.heat().get(Vpn(3)).heat > 0.0);
        assert!(p.heat().get(Vpn(3)).write_ratio() > 0.99);
    }

    #[test]
    fn hybrid_fuses_both_signals() {
        let mut s = space_with_pages(50);
        let mut p = HybridProfiler::vulcan_default();
        for _ in 0..640 {
            p.on_access(Vpn(5), false);
        }
        p.on_hint_fault(Vpn(9), false);
        let out = p.epoch(&mut s);
        assert!(out.cycles > Cycles::ZERO);
        assert!(!out.poisoned.is_empty(), "hybrid poisons via hint faults");
        assert!(p.heat().get(Vpn(5)).heat > 0.0, "PEBS signal present");
        assert!(p.heat().get(Vpn(9)).heat > 0.0, "hint signal fused in");
        // Poisoning happened too.
        assert!(s.mapped_vpns().any(|v| s.pte(v).poisoned()));
    }

    #[test]
    fn epoch_on_empty_space_is_safe() {
        let mut s = AddressSpace::new(false);
        let mut p = HintFaultProfiler::new(0.5);
        let out = p.epoch(&mut s);
        assert_eq!(out.cycles, Cycles::ZERO);
        assert!(out.poisoned.is_empty());
    }

    /// The hybrid profiler restored mid-stride must sample exactly the
    /// same future accesses as the original: the PEBS countdown, the
    /// hint cursor and every heat cell continue bit-for-bit.
    #[test]
    fn hybrid_snapshot_roundtrip_continues_the_sample_stream() {
        use vulcan_json::Snapshot;
        let mut s1 = space_with_pages(64);
        let mut orig = HybridProfiler::vulcan_default();
        for i in 0..777u64 {
            orig.on_access(Vpn(i % 64), i % 5 == 0); // countdown mid-stride
        }
        orig.epoch(&mut s1);
        orig.on_hint_fault(Vpn(9), true);
        let snap = orig.snapshot();
        let mut back = HybridProfiler::restore(&snap).expect("restore");
        assert_eq!(back.snapshot(), snap, "idempotent");
        let mut s2 = s1.clone();
        for i in 0..500u64 {
            orig.on_access(Vpn((i * 7) % 64), i % 3 == 0);
            back.on_access(Vpn((i * 7) % 64), i % 3 == 0);
        }
        let o1 = orig.epoch(&mut s1);
        let o2 = back.epoch(&mut s2);
        assert_eq!(o1.cycles, o2.cycles);
        assert_eq!(o1.poisoned, o2.poisoned, "hint cursor traveled");
        for v in 0..64u64 {
            let a = orig.heat().get(Vpn(v));
            let b = back.heat().get(Vpn(v));
            assert_eq!(a.heat.to_bits(), b.heat.to_bits(), "vpn {v}");
            assert_eq!(a.writes.to_bits(), b.writes.to_bits(), "vpn {v}");
        }
        assert_eq!(back.snapshot(), orig.snapshot(), "lockstep");
    }

    #[test]
    fn pebs_restore_rejects_mid_stride_corruption() {
        use vulcan_json::Snapshot;
        let p = PebsProfiler::new(10);
        let mut v = p.snapshot();
        if let vulcan_json::Value::Object(m) = &mut v {
            m.insert("countdown", vulcan_json::snap::u64_value(11));
        }
        assert!(PebsProfiler::restore(&v).unwrap_err().contains("countdown"));
    }
}
