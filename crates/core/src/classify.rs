//! Black-box LC/BE classification from utilization patterns (§3.3).
//!
//! "We then classify black-box workloads as either LC or BE based on
//! resource utilization patterns \[Themis\] to ensure differentiated QoS
//! guarantees." The observable signal on this substrate is the *memory
//! duty cycle*: latency-critical services spend most of each operation in
//! off-memory work (network, request handling) and issue sparse memory
//! accesses, while best-effort batch jobs are memory-bound sweeps. An EMA
//! of the per-quantum duty cycle with hysteresis keeps verdicts stable.

use crate::cbfrp::ServiceClass;

/// Per-workload duty-cycle classifier.
#[derive(Clone, Debug)]
pub struct Classifier {
    duty_ema: Vec<f64>,
    verdict: Vec<ServiceClass>,
    warm: Vec<u32>,
    /// Duty below this (memory time / active time) reads as LC.
    pub lc_threshold: f64,
    /// Hysteresis band around the threshold.
    pub hysteresis: f64,
    /// Quanta of warm-up before a verdict can flip from the default.
    pub warmup: u32,
}

/// EMA weight for the duty-cycle signal.
const DUTY_ALPHA: f64 = 0.3;

impl Classifier {
    /// A classifier for `n` workloads. Everyone starts as BE (the safe
    /// default: BE receives no reclaim privileges).
    pub fn new(n: usize) -> Classifier {
        Classifier {
            duty_ema: vec![0.0; n],
            verdict: vec![ServiceClass::BestEffort; n],
            warm: vec![0; n],
            lc_threshold: 0.5,
            hysteresis: 0.05,
            warmup: 2,
        }
    }

    /// Extend to `n` workloads (no-op if already covering them). A
    /// tenant admitted mid-run starts exactly like a fresh slot: zero
    /// duty history, the safe BE default, and a full warm-up before its
    /// verdict can flip.
    pub fn grow_to(&mut self, n: usize) {
        if n > self.verdict.len() {
            self.duty_ema.resize(n, 0.0);
            self.verdict.resize(n, ServiceClass::BestEffort);
            self.warm.resize(n, 0);
        }
    }

    /// Feed one quantum's duty cycle for workload `i`.
    pub fn observe(&mut self, i: usize, memory_duty: f64) {
        debug_assert!((0.0..=1.0 + 1e-9).contains(&memory_duty));
        let e = &mut self.duty_ema[i];
        *e = DUTY_ALPHA * memory_duty + (1.0 - DUTY_ALPHA) * *e;
        self.warm[i] = self.warm[i].saturating_add(1);
        if self.warm[i] < self.warmup {
            return;
        }
        // Hysteresis: flip only past the band edges.
        match self.verdict[i] {
            ServiceClass::BestEffort if *e < self.lc_threshold - self.hysteresis => {
                self.verdict[i] = ServiceClass::LatencyCritical;
            }
            ServiceClass::LatencyCritical if *e > self.lc_threshold + self.hysteresis => {
                self.verdict[i] = ServiceClass::BestEffort;
            }
            _ => {}
        }
    }

    /// Current verdict for workload `i`.
    pub fn class(&self, i: usize) -> ServiceClass {
        self.verdict[i]
    }

    /// All verdicts.
    pub fn classes(&self) -> &[ServiceClass] {
        &self.verdict
    }

    /// The smoothed duty cycle of workload `i`.
    pub fn duty(&self, i: usize) -> f64 {
        self.duty_ema[i]
    }
}

impl vulcan_json::Snapshot for Classifier {
    /// The EMA and warm-up counters are the classifier's entire memory;
    /// verdicts travel as "lc"/"be" tags so the hysteresis state (which
    /// side of the band each workload sits on) survives the round trip.
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::{snap, Value};
        let verdicts: Vec<Value> = self
            .verdict
            .iter()
            .map(|c| {
                Value::Str(match c {
                    ServiceClass::LatencyCritical => "lc".to_string(),
                    ServiceClass::BestEffort => "be".to_string(),
                })
            })
            .collect();
        let warm: Vec<u64> = self.warm.iter().map(|&w| u64::from(w)).collect();
        snap::obj(vec![
            ("duty_ema", snap::f64_array(&self.duty_ema)),
            ("verdict", Value::Array(verdicts)),
            ("warm", snap::u64_array(&warm)),
            ("lc_threshold", snap::f64_value(self.lc_threshold)),
            ("hysteresis", snap::f64_value(self.hysteresis)),
            ("warmup", snap::u64_value(u64::from(self.warmup))),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::{snap, Value};
        let duty_ema = snap::array_f64(snap::field(v, "duty_ema")?)?;
        let mut verdict = Vec::new();
        for t in snap::field_array(v, "verdict")? {
            verdict.push(match t {
                Value::Str(s) if s == "lc" => ServiceClass::LatencyCritical,
                Value::Str(s) if s == "be" => ServiceClass::BestEffort,
                other => return Err(format!("unknown service-class tag {other:?}")),
            });
        }
        let warm = snap::array_u64(snap::field(v, "warm")?)?
            .into_iter()
            .map(|w| u32::try_from(w).map_err(|_| format!("warm counter {w} out of range")))
            .collect::<Result<Vec<_>, String>>()?;
        if verdict.len() != duty_ema.len() || warm.len() != duty_ema.len() {
            return Err("classifier arrays have mismatched lengths".to_string());
        }
        Ok(Classifier {
            duty_ema,
            verdict,
            warm,
            lc_threshold: snap::field_f64(v, "lc_threshold")?,
            hysteresis: snap::field_f64(v, "hysteresis")?,
            warmup: u32::try_from(snap::field_u64(v, "warmup")?)
                .map_err(|_| "classifier warmup out of range".to_string())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ServiceClass::{BestEffort as BE, LatencyCritical as LC};

    #[test]
    fn sparse_access_pattern_reads_as_lc() {
        let mut c = Classifier::new(1);
        for _ in 0..10 {
            c.observe(0, 0.15); // memcached-like duty
        }
        assert_eq!(c.class(0), LC);
    }

    #[test]
    fn memory_bound_pattern_reads_as_be() {
        let mut c = Classifier::new(1);
        for _ in 0..10 {
            c.observe(0, 0.9); // liblinear-like duty
        }
        assert_eq!(c.class(0), BE);
    }

    #[test]
    fn default_is_be_until_warm() {
        let mut c = Classifier::new(1);
        assert_eq!(c.class(0), BE);
        c.observe(0, 0.1);
        assert_eq!(c.class(0), BE, "one quantum is not enough evidence");
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let mut c = Classifier::new(1);
        for _ in 0..20 {
            c.observe(0, 0.2);
        }
        assert_eq!(c.class(0), LC);
        // Oscillate right at the threshold: verdict must hold.
        for _ in 0..20 {
            c.observe(0, 0.52);
        }
        assert_eq!(c.class(0), LC, "within the hysteresis band");
        // Clear evidence flips it.
        for _ in 0..30 {
            c.observe(0, 0.95);
        }
        assert_eq!(c.class(0), BE);
    }

    #[test]
    fn grow_to_gives_newcomers_a_fresh_warmup() {
        let mut c = Classifier::new(1);
        for _ in 0..10 {
            c.observe(0, 0.15);
        }
        assert_eq!(c.class(0), LC);
        c.grow_to(2);
        assert_eq!(c.class(0), LC, "existing verdict untouched");
        assert_eq!(c.class(1), BE, "newcomer starts at the safe default");
        c.observe(1, 0.1);
        assert_eq!(c.class(1), BE, "newcomer warms up from scratch");
        for _ in 0..10 {
            c.observe(1, 0.1);
        }
        assert_eq!(c.class(1), LC);
    }

    #[test]
    fn snapshot_roundtrip_preserves_ema_and_warmup() {
        use vulcan_json::Snapshot;
        let mut c = Classifier::new(3);
        // w0 settled LC, w1 settled BE, w2 mid-warm-up (one observation
        // short) — the warm counters are hidden state a restore must keep.
        for _ in 0..10 {
            c.observe(0, 0.1);
            c.observe(1, 0.9);
        }
        c.observe(2, 0.1);
        let snap_v = c.snapshot();
        let mut back = Classifier::restore(&snap_v).unwrap();
        assert_eq!(back.snapshot(), snap_v, "idempotent round trip");
        assert_eq!(back.classes(), c.classes());
        // Continuation: one more observation completes w2's warm-up in
        // BOTH classifiers, and hysteresis keeps w0/w1 in lockstep.
        for m in [&mut c, &mut back] {
            m.observe(0, 0.52);
            m.observe(1, 0.52);
            m.observe(2, 0.1);
        }
        assert_eq!(back.classes(), c.classes());
        for i in 0..3 {
            assert_eq!(back.duty(i).to_bits(), c.duty(i).to_bits(), "w{i} EMA");
        }
    }

    #[test]
    fn restore_rejects_unknown_class_tag() {
        use vulcan_json::{Snapshot, Value};
        let Value::Object(mut o) = Classifier::new(1).snapshot() else {
            panic!("snapshot is an object")
        };
        o.insert("verdict", Value::Array(vec![Value::Str("vip".into())]));
        let err = Classifier::restore(&Value::Object(o)).unwrap_err();
        assert!(err.contains("unknown service-class"), "{err}");
    }

    #[test]
    fn independent_workloads() {
        let mut c = Classifier::new(2);
        for _ in 0..10 {
            c.observe(0, 0.1);
            c.observe(1, 0.9);
        }
        assert_eq!(c.classes(), &[LC, BE]);
        assert!(c.duty(0) < c.duty(1));
    }
}
