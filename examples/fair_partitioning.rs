//! Credit-Based Fair Resource Partitioning (Algorithm 1) in isolation:
//! drive the CBFRP ledger with a scripted demand sequence and watch
//! allocations and credits evolve.
//!
//! Run with: `cargo run --release --example fair_partitioning`

use vulcan::core::{Cbfrp, ServiceClass};
use vulcan::prelude::Table;

fn main() {
    // Three workloads sharing 3000 units of fast memory (GFMC = 1000):
    // an LC service with a demand spike at round 5, and two BE batch
    // jobs, one of which hoards early.
    let classes = [
        ServiceClass::LatencyCritical,
        ServiceClass::BestEffort,
        ServiceClass::BestEffort,
    ];
    let mut cbfrp = Cbfrp::new(3, 50);
    let gfmc = 1000;

    let scripted_demands: Vec<[u64; 3]> = vec![
        [200, 2600, 200], // BE#1 hoards the idle pool
        [200, 2600, 200],
        [200, 2600, 400],
        [200, 2600, 400],
        [1800, 2600, 400], // LC spike: must be served immediately
        [1800, 2600, 400],
        [600, 2600, 400], // LC relaxes: surplus flows back
        [600, 2600, 800],
    ];

    let mut table = Table::new(
        "CBFRP over 8 rounds (capacity 3000, GFMC 1000)",
        &[
            "round",
            "demands",
            "alloc LC",
            "alloc BE1",
            "alloc BE2",
            "credits",
        ],
    );
    for (round, d) in scripted_demands.iter().enumerate() {
        let p = cbfrp.partition(d, &classes, &[true; 3], gfmc);
        table.row(&[
            round.to_string(),
            format!("{d:?}"),
            p.alloc[0].to_string(),
            p.alloc[1].to_string(),
            p.alloc[2].to_string(),
            format!("{:?}", cbfrp.credits()),
        ]);
        if round == 4 {
            // 1000 entitlement + all 600 units reclaimable from BE#1's
            // over-entitlement (BE#2's 400 are within its own GFMC and
            // untouchable): the LC gets everything the ledger allows.
            assert_eq!(p.alloc[0], 1600, "LC served up to the reclaim limit");
        }
    }
    table.print();
    println!(
        "\nRound 4: the LC demand spike is satisfied instantly — voluntary \
         surplus first, then reclaim from the over-entitled BE (lines 11-13 \
         of Algorithm 1). Donors accumulate credits for long-term fairness."
    );
}
