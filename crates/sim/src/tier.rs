//! Memory tiers: capacity, latency and bandwidth characteristics.
//!
//! The paper's testbed (§5.1): locally-attached fast memory, 32 GB,
//! 70 ns unloaded latency; emulated CXL slow memory, 256 GB, 162 ns
//! unloaded latency; 205 GB/s local bandwidth, 25 GB/s cross-link
//! bandwidth per direction. The optional third tier models NVM-class
//! memory calibrated per "Emulating Hybrid Memory on NUMA Hardware"
//! (PAPERS.md): ~350 ns random-read latency, single-digit GB/s.
//!
//! Capacities are scaled for simulation: **1 paper-GB = 256 pages of
//! 4 KiB** (see DESIGN.md §5). The latency *gap* and the capacity *ratio*
//! are what drive every result in the paper, and both are preserved.
//!
//! Tiers form an ordered **demotion chain**, fastest first. A machine's
//! chain is always a non-empty prefix of [`TierKind::ALL`], so a tier's
//! [`TierKind::index`] equals its position in the chain and the
//! promotion/demotion targets are pure index arithmetic:
//! [`TierKind::demote_target`] walks one hop down the chain,
//! [`TierKind::promote_target`] one hop up, both saturating to `None`
//! at the ends.

use crate::time::Nanos;

/// Base page size used throughout (4 KiB), matching the paper's focus on
/// base-page migration (§3.4 splits 2 MiB huge pages into base pages).
pub const PAGE_SIZE: usize = 4096;

/// Huge page size (2 MiB): 512 base pages.
pub const HUGE_PAGE_PAGES: usize = 512;

/// Scale factor: number of simulated 4 KiB pages representing one paper-GB.
pub const PAGES_PER_PAPER_GB: u64 = 256;

/// Maximum chain length the machine supports (per-tier arrays are sized
/// by this; absent tiers hold zero capacity and never allocate).
pub const MAX_TIERS: usize = 3;

/// Which memory tier a frame lives in, ordered along the demotion chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TierKind {
    /// Fast, locally attached DRAM.
    Fast,
    /// Slow CXL-like far memory.
    Slow,
    /// NVM-class capacity tier below CXL (third chain hop).
    Nvm,
}

impl TierKind {
    /// Every tier the machine can model, in demotion-chain order.
    pub const ALL: [TierKind; MAX_TIERS] = [TierKind::Fast, TierKind::Slow, TierKind::Nvm];

    /// Dense index for array-per-tier structures; equals the tier's
    /// position in any chain that contains it.
    pub fn index(self) -> usize {
        match self {
            TierKind::Fast => 0,
            TierKind::Slow => 1,
            TierKind::Nvm => 2,
        }
    }

    /// One hop *down* the demotion chain of an `n_tiers` machine
    /// (chains are prefixes of [`Self::ALL`]), or `None` at the bottom.
    pub fn demote_target(self, n_tiers: usize) -> Option<TierKind> {
        debug_assert!(
            self.index() < n_tiers,
            "tier {self:?} is not part of a {n_tiers}-tier chain"
        );
        let next = self.index() + 1;
        (next < n_tiers).then(|| Self::ALL[next])
    }

    /// One hop *up* the demotion chain, or `None` at the top. Chain
    /// length is irrelevant: any tier in a chain has the same ancestors.
    pub fn promote_target(self) -> Option<TierKind> {
        self.index().checked_sub(1).map(|i| Self::ALL[i])
    }

    /// Short lowercase name for reports and assertions.
    pub fn name(self) -> &'static str {
        match self {
            TierKind::Fast => "fast",
            TierKind::Slow => "slow",
            TierKind::Nvm => "nvm",
        }
    }
}

impl TierKind {
    /// Inverse of [`TierKind::name`] (checkpoint decoding).
    pub fn from_name(name: &str) -> Option<TierKind> {
        TierKind::ALL.into_iter().find(|t| t.name() == name)
    }
}

impl TryFrom<usize> for TierKind {
    type Error = usize;

    /// Inverse of [`TierKind::index`]; the offending index is the error.
    fn try_from(index: usize) -> Result<TierKind, usize> {
        TierKind::ALL.get(index).copied().ok_or(index)
    }
}

/// Static description of one memory tier.
#[derive(Clone, Debug, PartialEq)]
pub struct TierSpec {
    /// Which tier this describes.
    pub kind: TierKind,
    /// Capacity in 4 KiB pages.
    pub capacity_pages: u64,
    /// Unloaded random-read latency for one cache line.
    pub load_latency: Nanos,
    /// Unloaded store latency for one cache line.
    pub store_latency: Nanos,
    /// Peak bandwidth in bytes per nanosecond (= GB/s).
    pub bandwidth_bytes_per_ns: f64,
}

impl TierSpec {
    /// The paper's fast tier: 32 GB local DDR4, 70 ns, 205 GB/s.
    pub fn paper_fast() -> TierSpec {
        TierSpec {
            kind: TierKind::Fast,
            capacity_pages: 32 * PAGES_PER_PAPER_GB,
            load_latency: Nanos(70),
            store_latency: Nanos(70),
            bandwidth_bytes_per_ns: 205.0,
        }
    }

    /// The paper's slow tier: 256 GB emulated CXL, 162 ns, 25 GB/s per
    /// direction over the UPI link.
    pub fn paper_slow() -> TierSpec {
        TierSpec {
            kind: TierKind::Slow,
            capacity_pages: 256 * PAGES_PER_PAPER_GB,
            load_latency: Nanos(162),
            store_latency: Nanos(162),
            bandwidth_bytes_per_ns: 25.0,
        }
    }

    /// NVM-class capacity tier: 512 GB, 350 ns, 8 GB/s — the far end of
    /// the emulated-hybrid-memory calibration range (PAPERS.md).
    pub fn paper_nvm() -> TierSpec {
        TierSpec {
            kind: TierKind::Nvm,
            capacity_pages: 512 * PAGES_PER_PAPER_GB,
            load_latency: Nanos(350),
            store_latency: Nanos(350),
            bandwidth_bytes_per_ns: 8.0,
        }
    }

    /// A tiny tier for unit tests.
    pub fn test_tier(kind: TierKind, capacity_pages: u64) -> TierSpec {
        let (lat, bw) = match kind {
            TierKind::Fast => (Nanos(70), 205.0),
            TierKind::Slow => (Nanos(162), 25.0),
            TierKind::Nvm => (Nanos(350), 8.0),
        };
        TierSpec {
            kind,
            capacity_pages,
            load_latency: lat,
            store_latency: lat,
            bandwidth_bytes_per_ns: bw,
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_pages * PAGE_SIZE as u64
    }

    /// Time to stream-copy `bytes` at this tier's peak bandwidth.
    pub fn stream_time(&self, bytes: u64) -> Nanos {
        Nanos((bytes as f64 / self.bandwidth_bytes_per_ns).ceil() as u64)
    }
}

impl vulcan_json::Snapshot for TierSpec {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::{snap, Value};
        snap::obj(vec![
            ("kind", Value::Str(self.kind.name().to_string())),
            ("capacity_pages", snap::u64_value(self.capacity_pages)),
            ("load_latency", snap::u64_value(self.load_latency.0)),
            ("store_latency", snap::u64_value(self.store_latency.0)),
            (
                "bandwidth_bytes_per_ns",
                snap::f64_value(self.bandwidth_bytes_per_ns),
            ),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        let name = snap::field_str(v, "kind")?;
        let kind =
            TierKind::from_name(name).ok_or_else(|| format!("unknown tier kind {name:?}"))?;
        Ok(TierSpec {
            kind,
            capacity_pages: snap::field_u64(v, "capacity_pages")?,
            load_latency: Nanos(snap::field_u64(v, "load_latency")?),
            store_latency: Nanos(snap::field_u64(v, "store_latency")?),
            bandwidth_bytes_per_ns: snap::field_f64(v, "bandwidth_bytes_per_ns")?,
        })
    }
}

/// Panic unless `chain` is a valid demotion chain: a non-empty prefix
/// of [`TierKind::ALL`]. Machines validate their spec with this at
/// construction so `TierKind::index()` can double as chain position.
pub fn validate_chain(chain: &[TierKind]) {
    assert!(!chain.is_empty(), "a machine needs at least one tier");
    assert!(
        chain.len() <= MAX_TIERS,
        "chain of {} tiers exceeds MAX_TIERS={MAX_TIERS}",
        chain.len()
    );
    for (pos, &tier) in chain.iter().enumerate() {
        assert_eq!(
            tier,
            TierKind::ALL[pos],
            "chain must be a prefix of TierKind::ALL; position {pos} holds {tier:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs_match_hardware_table() {
        let fast = TierSpec::paper_fast();
        let slow = TierSpec::paper_slow();
        assert_eq!(fast.load_latency, Nanos(70));
        assert_eq!(slow.load_latency, Nanos(162));
        // CXL adds 70–90 ns over local memory (paper cites Pond); 162-70=92.
        assert!(slow.load_latency.0 - fast.load_latency.0 >= 70);
        // Capacity ratio 256/32 = 8x is preserved under scaling.
        assert_eq!(slow.capacity_pages / fast.capacity_pages, 8);
        // NVM sits below CXL on both axes.
        let nvm = TierSpec::paper_nvm();
        assert!(nvm.load_latency > slow.load_latency);
        assert!(nvm.bandwidth_bytes_per_ns < slow.bandwidth_bytes_per_ns);
        assert!(nvm.capacity_pages > slow.capacity_pages);
    }

    #[test]
    fn promote_demote_compose_along_every_chain() {
        // Property: for every valid chain length and every member tier,
        // demote∘promote and promote∘demote are the identity mid-chain
        // and saturate to None at the chain ends.
        for n_tiers in 1..=MAX_TIERS {
            let chain = &TierKind::ALL[..n_tiers];
            validate_chain(chain);
            for (pos, &t) in chain.iter().enumerate() {
                let down = t.demote_target(n_tiers);
                let up = t.promote_target();
                assert_eq!(down.is_none(), pos + 1 == n_tiers, "{t:?} in {n_tiers}");
                assert_eq!(up.is_none(), pos == 0, "{t:?}");
                if let Some(d) = down {
                    assert_eq!(d.promote_target(), Some(t), "demote∘promote {t:?}");
                    assert_eq!(d.index(), pos + 1);
                }
                if let Some(u) = up {
                    assert_eq!(u.demote_target(n_tiers), Some(t), "promote∘demote {t:?}");
                    assert_eq!(u.index(), pos - 1);
                }
            }
        }
    }

    #[test]
    fn two_tier_chain_matches_legacy_other() {
        // The old two-tier `other()` involution is exactly what the chain
        // degenerates to at n_tiers = 2.
        assert_eq!(TierKind::Fast.demote_target(2), Some(TierKind::Slow));
        assert_eq!(TierKind::Slow.promote_target(), Some(TierKind::Fast));
        assert_eq!(TierKind::Slow.demote_target(2), None);
        assert_eq!(TierKind::Fast.promote_target(), None);
    }

    #[test]
    fn try_from_round_trips_and_rejects() {
        for t in TierKind::ALL {
            assert_eq!(TierKind::try_from(t.index()), Ok(t));
        }
        assert_eq!(TierKind::try_from(MAX_TIERS), Err(MAX_TIERS));
    }

    #[test]
    #[should_panic(expected = "prefix of TierKind::ALL")]
    fn chain_validation_rejects_gaps() {
        validate_chain(&[TierKind::Fast, TierKind::Nvm]);
    }

    #[test]
    fn stream_time_scales_with_bytes() {
        let slow = TierSpec::paper_slow();
        let one = slow.stream_time(PAGE_SIZE as u64);
        let ten = slow.stream_time(10 * PAGE_SIZE as u64);
        assert!(ten.0 >= 10 * one.0 - 10); // ceil slack
                                           // 4096 bytes at 25 GB/s = ~164 ns
        assert!((160..=170).contains(&one.0), "got {one:?}");
    }

    #[test]
    fn indexes_are_dense() {
        for (i, t) in TierKind::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }

    #[test]
    fn capacity_bytes() {
        let t = TierSpec::test_tier(TierKind::Fast, 2);
        assert_eq!(t.capacity_bytes(), 8192);
    }
}
