//! # vulcan-json — minimal JSON for the Vulcan workspace
//!
//! A small, dependency-free JSON implementation: an ordered [`Value`]
//! tree, a strict recursive-descent [`parse`], and compact/pretty
//! writers. It exists because the build environment is fully offline —
//! no crates.io — so `serde`/`serde_json` cannot be used; every config,
//! trace and telemetry artifact in the workspace goes through this crate
//! instead.
//!
//! Design points:
//! * objects preserve insertion order ([`Map`] is a flat `Vec` of pairs),
//!   so serialized artifacts are stable and diffable across runs;
//! * integers are kept exact (`i64`) where possible; floats render with
//!   Rust's shortest round-trip formatting;
//! * non-finite floats serialize as `null` (JSON has no NaN/Infinity).

#![warn(missing_docs)]

mod parse;
pub mod snap;

pub use parse::{parse, ParseError};
pub use snap::Snapshot;

/// An ordered JSON object: a flat list of `(key, value)` pairs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert or replace `key`.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Builder-style [`insert`](Map::insert).
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Map {
        self.insert(key, value);
        self
    }

    /// Look up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = &'a (String, Value);
    type IntoIter = std::slice::Iter<'a, (String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exact integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An ordered object.
    Object(Map),
}

impl Value {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64` (exact integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e15 => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as a `u64` (non-negative exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The value as an `f64` (any number).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Render compactly (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => write_f64(out, *f),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    if f.fract() == 0.0 && f.abs() < 1.0e16 {
        // Keep whole floats readable and round-trippable as numbers.
        out.push_str(&format!("{f:.1}"));
    } else {
        // `{:?}` is Rust's shortest round-trip float formatting.
        out.push_str(&format!("{f:?}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Value {
        Value::Float(f as f64)
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(i: $t) -> Value {
                Value::Int(i as i64)
            }
        }
    )*};
}
impl_from_int!(i8, i16, i32, i64, u8, u16, u32, isize);

impl From<u64> for Value {
    fn from(i: u64) -> Value {
        match i64::try_from(i) {
            Ok(v) => Value::Int(v),
            Err(_) => Value::Float(i as f64),
        }
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Value {
        Value::from(i as u64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::Str(s.clone())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Value {
        match opt {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

impl<A: Into<Value> + Copy, B: Into<Value> + Copy> From<&(A, B)> for Value {
    fn from(&(a, b): &(A, B)) -> Value {
        Value::Array(vec![a.into(), b.into()])
    }
}

/// Serialize a slice of pairs as an array of two-element arrays —
/// the layout `serde_json` used for tuples, kept for artifact
/// compatibility (time-series points, trace accesses).
pub fn pairs_to_value<A: Into<Value> + Copy, B: Into<Value> + Copy>(pairs: &[(A, B)]) -> Value {
    Value::Array(pairs.iter().map(Value::from).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_object_roundtrip() {
        let v = Value::Object(
            Map::new()
                .with("b", 1)
                .with("a", 2.5)
                .with("s", "x\"y")
                .with("n", Value::Null)
                .with("arr", vec![1, 2, 3]),
        );
        let text = v.to_json();
        assert_eq!(text, r#"{"b":1,"a":2.5,"s":"x\"y","n":null,"arr":[1,2,3]}"#);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn pretty_renders_indented() {
        let v = Value::Object(Map::new().with("k", vec![1]));
        assert_eq!(v.to_json_pretty(), "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn insert_replaces() {
        let mut m = Map::new();
        m.insert("k", 1);
        m.insert("k", 2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("k").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn numeric_accessors() {
        assert_eq!(Value::Int(7).as_u64(), Some(7));
        assert_eq!(Value::Int(-7).as_u64(), None);
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float(1.5).as_i64(), None);
        assert_eq!(Value::Float(2.0).as_i64(), Some(2));
        assert_eq!(Value::from(u64::MAX), Value::Float(u64::MAX as f64));
    }

    #[test]
    fn floats_round_trip() {
        for f in [0.1, 1.0 / 3.0, 1e-9, 123456.75, -0.25] {
            let text = Value::Float(f).to_json();
            let back = parse(&text).unwrap();
            assert_eq!(back.as_f64(), Some(f), "{text}");
        }
        assert_eq!(Value::Float(f64::NAN).to_json(), "null");
        assert_eq!(Value::Float(3.0).to_json(), "3.0");
    }

    #[test]
    fn control_chars_escape() {
        let text = Value::Str("a\u{1}\nb".into()).to_json();
        assert_eq!(text, "\"a\\u0001\\nb\"");
        assert_eq!(parse(&text).unwrap().as_str(), Some("a\u{1}\nb"));
    }

    #[test]
    fn pairs_layout_matches_serde_tuples() {
        let v = pairs_to_value(&[(0.5f64, 1.5f64)]);
        assert_eq!(v.to_json(), "[[0.5,1.5]]");
    }
}
