//! Integration test: the cold page dilemma (§2.2, Figure 1).
//!
//! Runs the Memtis baseline on Memcached solo, Liblinear solo, and the
//! two co-located, then checks the paper's Observation #1 end-to-end:
//! co-location collapses the LC workload's hot-page ratio and degrades
//! its performance, while Vulcan's workload-aware partitioning prevents
//! the collapse.

use vulcan::prelude::*;

fn cfg() -> SimConfig {
    SimConfig {
        quantum_active: Nanos::millis(1),
        n_quanta: 35,
        record_series: true,
        ..Default::default()
    }
}

fn run(workloads: Vec<WorkloadSpec>, kind: PolicyKind) -> RunResult {
    SimRunner::builder()
        .machine(MachineSpec::paper_testbed())
        .workloads(workloads)
        .profiler_factory(move |_| kind.profiler())
        .policy(kind.make())
        .config(cfg())
        .build()
        .run()
}

/// Mean hot-page ratio over the settled tail of the run.
fn settled_hot_ratio(res: &RunResult, name: &str) -> f64 {
    res.series
        .get(&format!("{name}.hot_ratio"))
        .expect("series recorded")
        .mean_after(20.0)
}

#[test]
fn memtis_solo_memcached_keeps_hot_pages_fast() {
    let res = run(vec![memcached()], PolicyKind::Memtis);
    let ratio = settled_hot_ratio(&res, "memcached");
    // Solo, the fast tier (8192 pages) holds ~63% of memcached's 13056
    // pages — the paper reports ~75% on its testbed.
    assert!(
        ratio > 0.5,
        "solo: most pages are classified hot / fast-resident: {ratio}"
    );
}

#[test]
fn memtis_colocation_triggers_the_dilemma() {
    let solo = run(vec![memcached()], PolicyKind::Memtis);
    let co = run(vec![memcached(), liblinear()], PolicyKind::Memtis);

    let solo_ratio = settled_hot_ratio(&solo, "memcached");
    let co_ratio = settled_hot_ratio(&co, "memcached");
    assert!(
        co_ratio < 0.5 * solo_ratio && co_ratio < 0.28,
        "co-location collapses the hot-page ratio (paper: 75% -> <28%): \
         solo={solo_ratio:.2} co={co_ratio:.2}"
    );

    let solo_perf = solo.workload("memcached").performance();
    let co_perf = co.workload("memcached").performance();
    let norm = co_perf / solo_perf;
    assert!(
        norm < 0.93,
        "LC performance degrades under the dilemma (paper: 0.8x): {norm:.3}"
    );

    // The BE workload tolerates co-location: it holds most of the fast
    // tier (Figure 1c) and keeps making solid progress. (On the paper's
    // testbed its normalized slowdown is milder than the LC's; here the
    // purely memory-bound sweep is proportionally sensitive to the fast
    // share it cedes to memcached's index, so we assert tolerance, not
    // strict ordering.)
    let lib_solo = run(vec![liblinear()], PolicyKind::Memtis);
    let lib_norm =
        co.workload("liblinear").performance() / lib_solo.workload("liblinear").performance();
    assert!(
        lib_norm > 0.7,
        "BE keeps making progress under co-location: be={lib_norm:.3}"
    );
    let lib_ratio = settled_hot_ratio(&co, "liblinear");
    assert!(
        lib_ratio * 17_664.0 > 0.6 * 8_192.0,
        "BE occupies most of the fast tier (Figure 1c): {lib_ratio:.2}"
    );
}

#[test]
fn vulcan_prevents_the_dilemma() {
    let memtis = run(vec![memcached(), liblinear()], PolicyKind::Memtis);
    let vulcan = run(vec![memcached(), liblinear()], PolicyKind::Vulcan);

    // Vulcan holds fewer-but-hotter LC pages: the protection shows in
    // the hit ratio, not raw residency.
    let fthr = |r: &RunResult| r.series.get("memcached.fthr").unwrap().mean_after(20.0);
    let (v_fthr, m_fthr) = (fthr(&vulcan), fthr(&memtis));
    assert!(
        v_fthr > m_fthr + 0.05,
        "Vulcan protects the LC hot set: vulcan={v_fthr:.2} memtis={m_fthr:.2}"
    );

    let lat = |r: &RunResult| {
        r.series
            .get("memcached.latency_ns")
            .unwrap()
            .mean_after(20.0)
    };
    assert!(
        lat(&vulcan) < lat(&memtis),
        "Vulcan improves LC latency under co-location: \
         vulcan={:.0} memtis={:.0}",
        lat(&vulcan),
        lat(&memtis)
    );
}

#[test]
fn vulcan_keeps_lc_fthr_above_its_gpt() {
    let res = run(vec![memcached(), liblinear()], PolicyKind::Vulcan);
    // GPT = GFMC / RSS = 4096 / 13056.
    let gpt = 4096.0 / 13056.0;
    let fthr = res.series.get("memcached.fthr").unwrap().mean_after(20.0);
    assert!(
        fthr > gpt,
        "the QoS guarantee holds in steady state: fthr={fthr:.3} gpt={gpt:.3}"
    );
}
