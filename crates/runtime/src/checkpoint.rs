//! Versioned checkpoint format for complete simulation state (ISSUE 10).
//!
//! A checkpoint is a deterministic JSON serialization of everything a
//! [`SimRunner`](crate::SimRunner) needs to continue a run as if it had
//! never stopped: the machine (allocator free lists, bandwidth windows,
//! TLB arrays, fault-plan counters and RNG position), every workload's
//! page tables, profiler internals, generator cursors and per-thread RNG
//! streams, the policy's internal state, and the run's metric
//! accumulators. The headline contract is *restore-replay identity*:
//! checkpoint at quantum Q, restore, run to completion — the artifacts
//! are byte-identical to the straight run.
//!
//! What is deliberately NOT serialized:
//! - **Telemetry** — recording never affects simulation results; a
//!   restored run starts with a disabled sink.
//! - **The policy object and profiler factory** — code, not data. The
//!   checkpoint stores the policy's *name* and its serialized state; the
//!   caller reconstructs the object (same kind, same config) and the
//!   restore replays the state into it.
//! - **Shard observability** (`last_execute_mode`, `sharded_quanta`) —
//!   never part of any artifact, and outcomes are byte-identical for
//!   every shard count by the ISSUE 7 contract.

use vulcan_json::Value;

/// Format tag every checkpoint carries.
pub const CHECKPOINT_FORMAT: &str = "vulcan-checkpoint";

/// Current checkpoint format version. Bump on any breaking layout
/// change; older readers refuse newer versions with a typed error.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Why a checkpoint could not be loaded. The CLI maps every variant to
/// exit code 2 (usage/input error) — never a panic, never partial state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The payload is not a checkpoint at all: unparseable JSON
    /// (truncated file, wrong file) or a missing/foreign format tag.
    Malformed(String),
    /// A real checkpoint, but a format version this build cannot read.
    Version {
        /// Version found in the payload.
        found: u64,
        /// Version this build supports.
        supported: u64,
    },
    /// Structurally a checkpoint, semantically inconsistent (bad field,
    /// mismatched array lengths, unknown enum tag).
    Invalid(String),
    /// The caller supplied a policy whose name differs from the one the
    /// checkpoint was taken under.
    PolicyMismatch {
        /// Policy name recorded in the checkpoint.
        expected: String,
        /// Name of the policy supplied at restore.
        found: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Malformed(e) => write!(f, "not a vulcan checkpoint: {e}"),
            CheckpointError::Version { found, supported } => write!(
                f,
                "unsupported checkpoint version {found} (this build reads version {supported})"
            ),
            CheckpointError::Invalid(e) => write!(f, "invalid checkpoint: {e}"),
            CheckpointError::PolicyMismatch { expected, found } => write!(
                f,
                "checkpoint was taken under policy \"{expected}\" but \"{found}\" was supplied"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Parse checkpoint text and validate its header. Returns the parsed
/// value only when the format tag matches and the version is supported,
/// so callers never touch fields of a payload from the future.
pub fn parse_checkpoint(text: &str) -> Result<Value, CheckpointError> {
    let v = vulcan_json::parse(text).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
    validate_header(&v)?;
    Ok(v)
}

/// Validate the `format`/`version` header of a parsed checkpoint.
pub fn validate_header(v: &Value) -> Result<(), CheckpointError> {
    let format = v
        .get("format")
        .and_then(Value::as_str)
        .ok_or_else(|| CheckpointError::Malformed("missing \"format\" tag".to_string()))?;
    if format != CHECKPOINT_FORMAT {
        return Err(CheckpointError::Malformed(format!(
            "format tag is \"{format}\", expected \"{CHECKPOINT_FORMAT}\""
        )));
    }
    let version = v
        .get("version")
        .and_then(Value::as_u64)
        .ok_or_else(|| CheckpointError::Malformed("missing \"version\"".to_string()))?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::Version {
            found: version,
            supported: CHECKPOINT_VERSION,
        });
    }
    Ok(())
}

/// The policy name recorded in a (header-validated) checkpoint. Restore
/// paths use this to construct the right policy before replaying state.
pub fn policy_name(v: &Value) -> Result<&str, CheckpointError> {
    v.get("policy")
        .and_then(|p| p.get("name"))
        .and_then(Value::as_str)
        .ok_or_else(|| CheckpointError::Invalid("missing policy name".to_string()))
}

/// The quantum index the checkpoint was taken at (quanta already run).
pub fn quantum_index(v: &Value) -> Result<u64, CheckpointError> {
    v.get("state")
        .and_then(|s| s.get("quantum_index"))
        .and_then(Value::as_u64)
        .ok_or_else(|| CheckpointError::Invalid("missing state.quantum_index".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_garbage_and_truncation() {
        let err = parse_checkpoint("not json at all").unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed(_)), "{err}");
        // A truncated payload is a parse error, not a partial success.
        let err = parse_checkpoint("{\"format\": \"vulcan-checkpoint\", \"ver").unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed(_)), "{err}");
    }

    #[test]
    fn rejects_foreign_format_tag() {
        let err =
            parse_checkpoint("{\"format\": \"some-other-tool\", \"version\": 1}").unwrap_err();
        let CheckpointError::Malformed(msg) = err else {
            panic!("expected Malformed")
        };
        assert!(msg.contains("some-other-tool"), "{msg}");
    }

    #[test]
    fn rejects_future_version_with_typed_error() {
        let err =
            parse_checkpoint("{\"format\": \"vulcan-checkpoint\", \"version\": 99}").unwrap_err();
        assert_eq!(
            err,
            CheckpointError::Version {
                found: 99,
                supported: CHECKPOINT_VERSION
            }
        );
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn accepts_current_header() {
        let v = parse_checkpoint("{\"format\": \"vulcan-checkpoint\", \"version\": 1}").unwrap();
        assert!(validate_header(&v).is_ok());
        assert!(matches!(
            policy_name(&v).unwrap_err(),
            CheckpointError::Invalid(_)
        ));
    }
}
