//! Fairness metrics: Jain's index and the paper's FTHR-weighted
//! Cumulative Fairness Index (CFI).
//!
//! §5.3 "Fairness Model": Jain's fairness index is applied to the
//! cumulative efficiency-adjusted allocation
//! `X_i = Σ_t x_i(t) · FTHR_i(t)`, giving
//! `CFI = (Σ X_i)² / (N · Σ X_i²)`   (equation 4).

/// Jain's fairness index over non-negative allocations.
///
/// Ranges from `1/n` (one workload gets everything) to `1` (perfectly
/// equal). Returns 1.0 for an empty or all-zero input (vacuously fair).
///
/// ```
/// use vulcan_metrics::jain_index;
/// assert_eq!(jain_index(&[5.0, 5.0, 5.0]), 1.0);        // equal
/// assert_eq!(jain_index(&[9.0, 0.0, 0.0]), 1.0 / 3.0);  // monopoly
/// ```
pub fn jain_index(xs: &[f64]) -> f64 {
    // Checked in release too: the index is computed once per sampling
    // interval, and a NaN or negative allocation would otherwise poison
    // the result silently (NaN compares false, so the sums go NaN).
    for (i, &x) in xs.iter().enumerate() {
        assert!(
            x.is_finite() && x >= 0.0,
            "jain_index: allocation[{i}] = {x}, must be finite and >= 0"
        );
    }
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sumsq: f64 = xs.iter().map(|x| x * x).sum();
    if sumsq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sumsq)
}

/// [`jain_index`] that distinguishes "fairness is undefined" from
/// "perfectly fair": returns `None` for an empty slice instead of the
/// vacuous 1.0.
///
/// Windowed fairness under churn needs the distinction — a quantum with
/// zero active tenants has no fairness to report, and folding a 1.0 into
/// a per-window mean would bias every churny cell toward "fair". Same
/// release-mode input validation as [`jain_index`].
///
/// ```
/// use vulcan_metrics::jain_index_checked;
/// assert_eq!(jain_index_checked(&[]), None);
/// assert_eq!(jain_index_checked(&[5.0, 5.0]), Some(1.0));
/// ```
pub fn jain_index_checked(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(jain_index(xs))
}

/// Accumulator for the FTHR-weighted Cumulative Fairness Index.
#[derive(Clone, Debug, Default)]
pub struct CfiAccumulator {
    /// `X_i` per workload.
    x: Vec<f64>,
    /// Samples folded in.
    samples: u64,
}

impl CfiAccumulator {
    /// Accumulator for `n` workloads.
    ///
    /// `n = 0` is a valid (empty) window: with no workloads there is no
    /// unfairness to measure, so [`CfiAccumulator::cfi`] reports the same
    /// vacuous 1.0 as [`jain_index`] on an empty slice.
    pub fn new(n: usize) -> Self {
        CfiAccumulator {
            x: vec![0.0; n],
            samples: 0,
        }
    }

    /// Grow the accumulator to track `n` workloads (no-op if it already
    /// does). Late arrivals join with zero cumulative allocation `X_i` —
    /// the paper's equation 4 sums from each workload's own arrival, so a
    /// tenant admitted mid-run starts its ledger at the moment it exists.
    pub fn grow_to(&mut self, n: usize) {
        if n > self.x.len() {
            self.x.resize(n, 0.0);
        }
    }

    /// Fold in one sampling interval: `alloc[i]` is workload *i*'s fast
    /// memory allocation `x_i(t)` and `fthr[i]` its fast-tier hit ratio.
    ///
    /// # Panics
    /// Panics (in release builds too) on NaN, infinite or negative
    /// allocations and on hit ratios outside `[0, 1]`: one bad sample
    /// would silently corrupt every CFI reported after it.
    pub fn record(&mut self, alloc: &[f64], fthr: &[f64]) {
        assert_eq!(alloc.len(), self.x.len());
        assert_eq!(fthr.len(), self.x.len());
        for i in 0..self.x.len() {
            assert!(
                alloc[i].is_finite() && alloc[i] >= 0.0,
                "CFI sample: alloc[{i}] = {}, must be finite and >= 0",
                alloc[i]
            );
            assert!(
                fthr[i].is_finite() && (0.0..=1.0).contains(&fthr[i]),
                "CFI sample: fthr[{i}] = {}, must be in [0, 1]",
                fthr[i]
            );
            self.x[i] += alloc[i] * fthr[i];
        }
        self.samples += 1;
    }

    /// The cumulative efficiency-adjusted allocations `X_i`.
    pub fn cumulative(&self) -> &[f64] {
        &self.x
    }

    /// Equation 4: Jain's index over the `X_i`.
    pub fn cfi(&self) -> f64 {
        jain_index(&self.x)
    }

    /// Number of recorded intervals.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

impl vulcan_json::Snapshot for CfiAccumulator {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        snap::obj(vec![
            ("x", snap::f64_array(&self.x)),
            ("samples", snap::u64_value(self.samples)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        Ok(CfiAccumulator {
            x: snap::array_f64(snap::field(v, "x")?)?,
            samples: snap::field_u64(v, "samples")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_allocation_is_perfectly_fair() {
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monopolized_allocation_hits_lower_bound() {
        let j = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12, "1/n for total monopoly");
    }

    #[test]
    fn index_is_scale_invariant() {
        let a = jain_index(&[1.0, 2.0, 3.0]);
        let b = jain_index(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_index(&[7.0]), 1.0);
    }

    #[test]
    fn checked_variant_refuses_empty_windows() {
        assert_eq!(jain_index_checked(&[]), None);
        assert_eq!(jain_index_checked(&[0.0, 0.0]), Some(1.0));
        assert_eq!(jain_index_checked(&[9.0, 0.0, 0.0]), Some(1.0 / 3.0));
        // Never NaN: the empty window that would be 0/0 is None instead.
        assert!(jain_index_checked(&[]).is_none_or(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "allocation[0] = NaN, must be finite and >= 0")]
    fn checked_variant_pins_the_validation_message() {
        jain_index_checked(&[f64::NAN]);
    }

    #[test]
    fn empty_window_accumulator_is_vacuously_fair() {
        let mut acc = CfiAccumulator::new(0);
        assert_eq!(acc.cfi(), 1.0, "no workloads: nothing can be unfair");
        acc.record(&[], &[]);
        assert_eq!(acc.samples(), 1);
        assert_eq!(acc.cfi(), 1.0);
        assert!(acc.cumulative().is_empty());
    }

    #[test]
    fn grow_to_adds_late_arrivals_with_zero_ledger() {
        let mut acc = CfiAccumulator::new(1);
        acc.record(&[10.0], &[1.0]);
        acc.grow_to(2);
        assert_eq!(acc.cumulative(), &[10.0, 0.0]);
        acc.record(&[10.0, 10.0], &[1.0, 1.0]);
        assert_eq!(acc.cumulative(), &[20.0, 10.0]);
        // Shrinking is refused silently: indices must stay stable.
        acc.grow_to(1);
        assert_eq!(acc.cumulative().len(), 2);
    }

    #[test]
    fn more_unequal_is_less_fair() {
        let mild = jain_index(&[4.0, 5.0, 6.0]);
        let harsh = jain_index(&[1.0, 5.0, 9.0]);
        assert!(mild > harsh);
    }

    #[test]
    fn cfi_weights_by_fthr() {
        // Equal allocations but one workload's allocation is useless
        // (FTHR 0): CFI must punish the *efficiency-adjusted* inequality.
        let mut acc = CfiAccumulator::new(2);
        acc.record(&[10.0, 10.0], &[1.0, 0.0]);
        assert!(acc.cfi() < 0.6);
        assert_eq!(acc.cumulative(), &[10.0, 0.0]);
        assert_eq!(acc.samples(), 1);
    }

    #[test]
    fn cfi_accumulates_over_time() {
        let mut acc = CfiAccumulator::new(2);
        // Alternating monopoly evens out cumulatively.
        for t in 0..10 {
            if t % 2 == 0 {
                acc.record(&[10.0, 0.0], &[1.0, 1.0]);
            } else {
                acc.record(&[0.0, 10.0], &[1.0, 1.0]);
            }
        }
        assert!((acc.cfi() - 1.0).abs() < 1e-12, "long-term fairness");
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut acc = CfiAccumulator::new(2);
        acc.record(&[1.0], &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "allocation[1] = NaN, must be finite")]
    fn jain_rejects_nan_allocation() {
        jain_index(&[1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "allocation[0] = -3, must be finite and >= 0")]
    fn jain_rejects_negative_allocation() {
        jain_index(&[-3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "allocation[0] = inf")]
    fn jain_rejects_infinite_allocation() {
        jain_index(&[f64::INFINITY]);
    }

    #[test]
    #[should_panic(expected = "alloc[0] = NaN, must be finite and >= 0")]
    fn record_rejects_nan_alloc() {
        let mut acc = CfiAccumulator::new(2);
        acc.record(&[f64::NAN, 1.0], &[0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "alloc[1] = -1, must be finite and >= 0")]
    fn record_rejects_negative_alloc() {
        let mut acc = CfiAccumulator::new(2);
        acc.record(&[1.0, -1.0], &[0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "fthr[1] = 1.5, must be in [0, 1]")]
    fn record_rejects_out_of_range_fthr() {
        let mut acc = CfiAccumulator::new(2);
        acc.record(&[1.0, 1.0], &[0.5, 1.5]);
    }

    #[test]
    #[should_panic(expected = "fthr[0] = NaN, must be in [0, 1]")]
    fn record_rejects_nan_fthr() {
        let mut acc = CfiAccumulator::new(1);
        acc.record(&[1.0], &[f64::NAN]);
    }

    #[test]
    fn record_accepts_boundary_hit_ratios() {
        let mut acc = CfiAccumulator::new(2);
        acc.record(&[4.0, 4.0], &[0.0, 1.0]);
        assert_eq!(acc.cumulative(), &[0.0, 4.0]);
        assert!(acc.cfi().is_finite());
    }
}
