//! TLB shootdown planning and execution.
//!
//! Conventional kernels broadcast IPIs to every core running any thread of
//! the process (the `mm_cpumask`), because the shared page table gives no
//! finer information. Vulcan's per-thread replication identifies exactly
//! which threads can cache a migrating page (§3.4), shrinking the IPI
//! target set — `ShootdownScope::Targeted`.

use crate::addr::Vpn;
use crate::process::Process;
use crate::tlb::TlbArray;
use std::collections::BTreeSet;
use vulcan_sim::{CoreId, Cycles, MigrationCosts, Topology};

/// How IPI targets are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShootdownScope {
    /// All cores running any thread of the process (vanilla Linux).
    ProcessWide,
    /// Only cores whose threads own/share the pages (Vulcan, §3.4).
    Targeted,
}

/// How the flush cost is modeled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShootdownMode {
    /// Cold single-page path (Figure 2 regime).
    Cold,
    /// Batched bulk-migration path (Figure 3/7 regime).
    Batched,
}

/// A planned shootdown: pages to invalidate and cores to interrupt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShootdownPlan {
    /// Pages whose translations must be invalidated.
    pub pages: Vec<Vpn>,
    /// Remote cores that receive an IPI.
    pub targets: BTreeSet<CoreId>,
}

impl ShootdownPlan {
    /// Number of IPI targets.
    pub fn n_targets(&self) -> u16 {
        u16::try_from(self.targets.len())
            .expect("IPI targets are distinct cores, and core IDs are u16")
    }
}

/// Plan a shootdown for `pages` of `process` under `scope`.
///
/// Unmapped pages contribute no targets of their own but are still listed
/// for invalidation (their translations may linger in TLBs).
pub fn plan(
    process: &Process,
    topology: &Topology,
    pages: &[Vpn],
    scope: ShootdownScope,
) -> ShootdownPlan {
    let targets = match scope {
        ShootdownScope::ProcessWide => topology.cores_of(process.sim_threads().iter().copied()),
        ShootdownScope::Targeted => {
            let mut cores = BTreeSet::new();
            for &vpn in pages {
                if let Some(threads) = process.caching_threads(vpn) {
                    cores.extend(topology.cores_of(threads));
                }
            }
            cores
        }
    };
    ShootdownPlan {
        pages: pages.to_vec(),
        targets,
    }
}

/// Execute a planned shootdown: invalidate TLB entries on the target cores
/// and return the modeled cycle cost.
pub fn execute(
    plan: &ShootdownPlan,
    process: &Process,
    tlbs: &mut TlbArray,
    costs: &MigrationCosts,
    mode: ShootdownMode,
) -> Cycles {
    for &vpn in &plan.pages {
        tlbs.invalidate_on(plan.targets.iter().copied(), process.asid, vpn);
    }
    cost_of(plan, costs, mode)
}

/// The modeled cost of a shootdown without executing it (used by
/// what-if analysis in the biased migration policy).
pub fn cost_of(plan: &ShootdownPlan, costs: &MigrationCosts, mode: ShootdownMode) -> Cycles {
    let targets = plan.n_targets();
    match mode {
        ShootdownMode::Cold => {
            // One broadcast per page on the cold path.
            let per_page = costs.shootdown_cold(targets);
            Cycles(per_page.0 * plan.pages.len() as u64)
        }
        ShootdownMode::Batched => costs.shootdown_batched(plan.pages.len() as u64, targets),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb::Asid;
    use vulcan_sim::{FrameId, SimThreadId, TierKind};

    /// 8 threads on 8 distinct cores; pages 0..4 private to t0, page 10 shared.
    fn setup() -> (Process, Topology, TlbArray) {
        let mut p = Process::new(Asid(1), true);
        let mut topo = Topology::new(32);
        for i in 0..8u32 {
            let tid = p.spawn_thread(SimThreadId(i));
            topo.pin(SimThreadId(i), CoreId(i as u16));
            let _ = tid;
        }
        for v in 0..4u64 {
            p.space.map(
                Vpn(v),
                FrameId {
                    tier: TierKind::Slow,
                    index: v as u32,
                },
                crate::pte::LocalTid(0),
            );
            p.space
                .touch(Vpn(v), crate::pte::LocalTid(0), false)
                .unwrap();
        }
        p.space.map(
            Vpn(10),
            FrameId {
                tier: TierKind::Slow,
                index: 10,
            },
            crate::pte::LocalTid(0),
        );
        p.space
            .touch(Vpn(10), crate::pte::LocalTid(0), false)
            .unwrap();
        p.space
            .touch(Vpn(10), crate::pte::LocalTid(3), false)
            .unwrap();
        let tlbs = TlbArray::new(32);
        (p, topo, tlbs)
    }

    #[test]
    fn process_wide_targets_all_process_cores() {
        let (p, topo, _) = setup();
        let plan = plan(&p, &topo, &[Vpn(0)], ShootdownScope::ProcessWide);
        assert_eq!(plan.n_targets(), 8);
    }

    #[test]
    fn targeted_private_page_hits_one_core() {
        let (p, topo, _) = setup();
        let plan = plan(&p, &topo, &[Vpn(0)], ShootdownScope::Targeted);
        assert_eq!(plan.n_targets(), 1);
        assert!(plan.targets.contains(&CoreId(0)));
    }

    #[test]
    fn targeted_shared_page_hits_all_threads() {
        let (p, topo, _) = setup();
        let plan = plan(&p, &topo, &[Vpn(10)], ShootdownScope::Targeted);
        assert_eq!(plan.n_targets(), 8, "shared page caches anywhere");
    }

    #[test]
    fn targeted_mixed_batch_unions_targets() {
        let (p, topo, _) = setup();
        let plan = plan(&p, &topo, &[Vpn(0), Vpn(1)], ShootdownScope::Targeted);
        assert_eq!(plan.n_targets(), 1, "both pages private to t0");
    }

    #[test]
    fn unmapped_page_contributes_no_targets() {
        let (p, topo, _) = setup();
        let plan = plan(&p, &topo, &[Vpn(999)], ShootdownScope::Targeted);
        assert_eq!(plan.n_targets(), 0);
    }

    #[test]
    fn execute_invalidates_target_tlbs_only() {
        let (p, topo, mut tlbs) = setup();
        let f = FrameId {
            tier: TierKind::Slow,
            index: 0,
        };
        tlbs.core(CoreId(0)).insert(p.asid, Vpn(0), f);
        tlbs.core(CoreId(5)).insert(p.asid, Vpn(0), f);
        let plan = plan(&p, &topo, &[Vpn(0)], ShootdownScope::Targeted);
        let cost = execute(
            &plan,
            &p,
            &mut tlbs,
            &MigrationCosts::default(),
            ShootdownMode::Cold,
        );
        assert!(cost > Cycles::ZERO);
        // Target core 0 flushed; non-target core 5 keeps its stale entry
        // (harmless here: only the migration path relies on invalidation,
        // and it targets exactly the cores that can hold the page).
        assert_eq!(tlbs.core(CoreId(0)).lookup(p.asid, Vpn(0)), None);
        assert!(tlbs.core(CoreId(5)).lookup(p.asid, Vpn(0)).is_some());
    }

    #[test]
    fn targeted_cost_is_lower() {
        let (p, topo, _) = setup();
        let costs = MigrationCosts::default();
        let pages: Vec<Vpn> = (0..4).map(Vpn).collect();
        let wide = plan(&p, &topo, &pages, ShootdownScope::ProcessWide);
        let narrow = plan(&p, &topo, &pages, ShootdownScope::Targeted);
        let wide_cost = cost_of(&wide, &costs, ShootdownMode::Batched);
        let narrow_cost = cost_of(&narrow, &costs, ShootdownMode::Batched);
        assert!(
            narrow_cost.0 * 4 < wide_cost.0,
            "{narrow_cost} vs {wide_cost}"
        );
    }

    #[test]
    fn zero_target_shootdown_is_free() {
        let (p, topo, _) = setup();
        let plan = plan(&p, &topo, &[Vpn(999)], ShootdownScope::Targeted);
        let cost = cost_of(&plan, &MigrationCosts::default(), ShootdownMode::Cold);
        assert_eq!(cost, Cycles::ZERO);
    }
}
