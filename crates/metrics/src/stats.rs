//! Summary statistics: online mean/variance, percentiles, and the
//! mean ± 95% confidence intervals the paper plots over 10 trials.

use vulcan_json::snap::{self, Snapshot};
use vulcan_json::Value;

/// Welford online mean/variance accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (NaN-free; infinity when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of the 95% confidence interval of the mean, using the
    /// normal approximation (the paper plots 95% CIs over ≥10 trials).
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        1.96 * self.stddev() / (self.n as f64).sqrt()
    }
}

impl Snapshot for OnlineStats {
    fn snapshot(&self) -> Value {
        snap::obj(vec![
            ("n", snap::u64_value(self.n)),
            ("mean", snap::f64_value(self.mean)),
            ("m2", snap::f64_value(self.m2)),
            ("min", snap::f64_value(self.min)),
            ("max", snap::f64_value(self.max)),
        ])
    }

    fn restore(v: &Value) -> Result<Self, String> {
        Ok(OnlineStats {
            n: snap::field_u64(v, "n")?,
            mean: snap::field_f64(v, "mean")?,
            m2: snap::field_f64(v, "m2")?,
            min: snap::field_f64(v, "min")?,
            max: snap::field_f64(v, "max")?,
        })
    }
}

/// Mean and 95% CI of a slice of trial results.
pub fn mean_ci95(samples: &[f64]) -> (f64, f64) {
    let mut s = OnlineStats::new();
    for &x in samples {
        s.push(x);
    }
    (s.mean(), s.ci95())
}

/// Exact percentile (nearest-rank) of a sample set, or `None` when the
/// window is empty — callers emit a JSON `null` / skip the row instead
/// of panicking (ISSUE 5: chaos sweeps legitimately produce empty
/// windows, e.g. a fault class that never fired).
pub fn percentile(samples: &mut [f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p));
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let rank = ((p / 100.0) * (samples.len() as f64 - 1.0)).round() as usize;
    Some(samples[rank])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(s.count(), 8);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        for i in 0..10 {
            small.push((i % 3) as f64);
        }
        for i in 0..1000 {
            large.push((i % 3) as f64);
        }
        assert!(large.ci95() < small.ci95());
    }

    #[test]
    fn mean_ci_helper() {
        let (m, ci) = mean_ci95(&[1.0, 1.0, 1.0]);
        assert_eq!(m, 1.0);
        assert_eq!(ci, 0.0);
    }

    #[test]
    fn percentiles() {
        let mut v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&mut v, 50.0), Some(51.0)); // rank 49.5 rounds up
        assert_eq!(percentile(&mut v, 0.0), Some(1.0));
        assert_eq!(percentile(&mut v, 100.0), Some(100.0));
        assert_eq!(percentile(&mut v, 99.0), Some(99.0));
    }

    #[test]
    fn percentile_of_empty_window_is_none() {
        // Regression (ISSUE 5): this used to assert, killing whole chaos
        // sweeps when a fault class produced no samples.
        assert_eq!(percentile(&mut [], 50.0), None);
        assert_eq!(percentile(&mut [], 99.0), None);
    }
}
