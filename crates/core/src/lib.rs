//! # vulcan-core — the paper's contribution
//!
//! Vulcan: workload-aware, fair and efficient tiered memory management
//! for multi-tenant environments (Tang et al., ICPP'25). Four
//! innovations, each a module here:
//!
//! 1. **Workload-dependent page migration** (§3.2) — per-application
//!    migration engines with Vulcan's optimized preparation, driven by
//!    [`VulcanPolicy`]; the mechanism lives in `vulcan-migrate`.
//! 2. **QoS-aware fair resource partitioning** (§3.3) — [`qos`]
//!    (GPT/FTHR/demand, equations 1–3) and [`cbfrp`] (Algorithm 1), fed
//!    by the black-box [`classify`] LC/BE classifier.
//! 3. **Per-thread page-table replication** (§3.4) — implemented in
//!    `vulcan-vm`; exploited here through ownership-targeted shootdowns
//!    in the default [`VulcanConfig::mechanism`].
//! 4. **Biased page migration policy** (§3.5) — [`queues`]: Table 1's
//!    four priority queues with MLFQ aging, async copies for
//!    read-intensive pages and sync for write-intensive ones.

#![warn(missing_docs)]

pub mod cbfrp;
pub mod classify;
pub mod policy;
pub mod qos;
pub mod queues;

pub use cbfrp::{Cbfrp, Partition, ServiceClass};
pub use classify::Classifier;
pub use policy::{VulcanConfig, VulcanPolicy};
pub use qos::{demand, gfmc, gpt};
pub use queues::{
    classify as classify_page, DrainPlan, PageClass, PromotionQueues, WRITE_INTENSIVE_RATIO,
};
