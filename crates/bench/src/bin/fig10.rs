//! Figure 10: performance and fairness comparison of Memcached, PageRank
//! and Liblinear between TPP, MEMTIS, NOMAD and VULCAN (higher is
//! better), over multiple trials with 95% confidence intervals.
//!
//! Paper anchors: Vulcan ≈ +35% over TPP and +25% over Memtis on
//! Memcached; ≈ +5.3% over TPP and +19% over Memtis on PageRank; ≈ +15%
//! over Memtis on Liblinear (slightly under TPP); fairness +52% over
//! Memtis and +86% over Nomad; averages: +12.4% performance, +75.3%
//! fairness.

use vulcan::metrics::OnlineStats;
use vulcan::prelude::*;
use vulcan_bench::suite::{fig10_grid, SuiteOpts};
use vulcan_bench::{init_threads, save_json_or_exit, trials};
use vulcan_json::{Map, Value};

const APPS: [&str; 3] = ["memcached", "pagerank", "liblinear"];

struct PolicyAgg {
    perf: [OnlineStats; 3],
    cfi: OnlineStats,
}

/// Steady-state performance: settled-tail latency inverse for the LC
/// app, settled-tail throughput for BE apps (Figure 10 reports the
/// co-located steady state).
fn perf(res: &RunResult, name: &str) -> f64 {
    let settle = 150.0;
    match res.workload(name).class {
        WorkloadClass::LatencyCritical => {
            let lat = res
                .series
                .get(&format!("{name}.latency_ns"))
                .expect("series")
                .mean_after(settle);
            if lat == 0.0 {
                0.0
            } else {
                1e9 / lat
            }
        }
        WorkloadClass::BestEffort => res
            .series
            .get(&format!("{name}.ops_per_sec"))
            .expect("series")
            .mean_after(settle),
    }
}

fn main() {
    init_threads();
    let n_trials = trials();
    // Independent (policy × trial) cells run on the thread pool; the
    // grid comes back in declaration order (policy-major, trial-minor).
    let grid = fig10_grid(&SuiteOpts::full());
    let results = grid.run();

    let policies = PolicyKind::PAPER;
    let mut agg: Vec<PolicyAgg> = (0..policies.len())
        .map(|_| PolicyAgg {
            perf: [OnlineStats::new(), OnlineStats::new(), OnlineStats::new()],
            cfi: OnlineStats::new(),
        })
        .collect();
    for (i, res) in results.iter().enumerate() {
        let pi = i / n_trials as usize;
        for (ai, app) in APPS.iter().enumerate() {
            agg[pi].perf[ai].push(perf(res, app));
        }
        agg[pi].cfi.push(res.cfi);
    }

    // Normalize each app's performance to the lowest-performing policy
    // (the paper normalizes to the worst approach).
    let mins: Vec<f64> = (0..3)
        .map(|ai| {
            agg.iter()
                .map(|a| a.perf[ai].mean())
                .fold(f64::INFINITY, f64::min)
        })
        .collect();

    let mut table = Table::new(
        format!("Figure 10: normalized performance & CFI ({n_trials} trials, 95% CI)"),
        &["policy", "memcached", "pagerank", "liblinear", "CFI"],
    );
    let mut rows = Vec::new();
    for (pi, policy) in policies.iter().enumerate() {
        let mut cells_out = vec![policy.to_string()];
        let mut json_apps = Map::new();
        for (ai, app) in APPS.iter().enumerate() {
            let mean = agg[pi].perf[ai].mean() / mins[ai];
            let ci = agg[pi].perf[ai].ci95() / mins[ai];
            cells_out.push(format!("{mean:.3}±{ci:.3}"));
            json_apps.insert(*app, Map::new().with("normalized", mean).with("ci95", ci));
        }
        cells_out.push(format!(
            "{:.3}±{:.3}",
            agg[pi].cfi.mean(),
            agg[pi].cfi.ci95()
        ));
        table.row(&cells_out);
        rows.push(Value::Object(
            Map::new()
                .with("policy", policy.name())
                .with("apps", json_apps)
                .with("cfi", agg[pi].cfi.mean())
                .with("cfi_ci95", agg[pi].cfi.ci95()),
        ));
    }
    table.print();

    // Headline averages (the paper's 12.4% performance / 75.3% fairness).
    let vi = policies
        .iter()
        .position(|&p| p == PolicyKind::Vulcan)
        .expect("vulcan");
    let mut perf_gains = Vec::new();
    let mut fair_gains = Vec::new();
    for (pi, policy) in policies.iter().enumerate() {
        if pi == vi {
            continue;
        }
        for ai in 0..3 {
            perf_gains.push(agg[vi].perf[ai].mean() / agg[pi].perf[ai].mean() - 1.0);
        }
        fair_gains.push(agg[vi].cfi.mean() / agg[pi].cfi.mean() - 1.0);
        println!(
            "vulcan vs {policy}: perf {:+.1}%/{:+.1}%/{:+.1}% (mc/pr/lib), fairness {:+.1}%",
            100.0 * (agg[vi].perf[0].mean() / agg[pi].perf[0].mean() - 1.0),
            100.0 * (agg[vi].perf[1].mean() / agg[pi].perf[1].mean() - 1.0),
            100.0 * (agg[vi].perf[2].mean() / agg[pi].perf[2].mean() - 1.0),
            100.0 * (agg[vi].cfi.mean() / agg[pi].cfi.mean() - 1.0),
        );
    }
    let avg_perf = 100.0 * perf_gains.iter().sum::<f64>() / perf_gains.len() as f64;
    let avg_fair = 100.0 * fair_gains.iter().sum::<f64>() / fair_gains.len() as f64;
    println!(
        "\nHeadline: average performance improvement {avg_perf:+.1}% \
         (paper: +12.4%), average fairness improvement {avg_fair:+.1}% \
         (paper: +75.3%)."
    );
    rows.push(Value::Object(
        Map::new().with(
            "headline",
            Map::new()
                .with("avg_perf_gain_pct", avg_perf)
                .with("avg_fairness_gain_pct", avg_fair),
        ),
    ));
    save_json_or_exit("fig10", &rows);
}
