//! Criterion benchmark of end-to-end simulation throughput: one quantum
//! of the three-application co-location per policy. This is the number
//! that determines how long every figure binary takes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vulcan::prelude::*;
use vulcan_bench::{colocation_specs, make_policy, POLICIES};

fn bench_quantum(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantum");
    g.sample_size(10);
    for policy in POLICIES {
        g.bench_with_input(
            BenchmarkId::new("colocation", policy),
            &policy,
            |b, &policy| {
                // Warm a runner past the arrivals, then time steady quanta.
                let mut runner = SimRunner::new(
                    MachineSpec::paper_testbed(),
                    colocation_specs()
                        .into_iter()
                        .map(|w| w.starting_at(Nanos::ZERO))
                        .collect(),
                    &mut |_| profiler_for(policy),
                    make_policy(policy),
                    SimConfig {
                        n_quanta: 0,
                        record_series: false,
                        ..Default::default()
                    },
                );
                for _ in 0..10 {
                    runner.run_quantum();
                }
                b.iter(|| runner.run_quantum());
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_quantum);
criterion_main!(benches);
