//! Extending the framework: a custom tiering policy in ~40 lines.
//!
//! Implements a naive "greedy hotness" policy against the same
//! `TieringPolicy` trait the baselines and Vulcan use, and races it
//! against Vulcan on a two-app co-location.
//!
//! Run with: `cargo run --release --example custom_policy`

use vulcan::prelude::*;
use vulcan::runtime::SystemState;

/// Promote any page hotter than a fixed threshold, never demote unless
/// the fast tier is full. Simple — and unfair, as the output shows.
struct GreedyHotness {
    threshold: f64,
}

impl TieringPolicy for GreedyHotness {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn on_quantum(&mut self, state: &mut SystemState) {
        let mech = MechanismConfig::linux_baseline();
        for w in 0..state.n_workloads() {
            if !state.workloads[w].started {
                continue;
            }
            let hot: Vec<Vpn> = {
                let ws = &state.workloads[w];
                ws.heat()
                    .iter()
                    .filter(|(vpn, s)| {
                        s.heat >= self.threshold
                            && ws.process.space.pte(*vpn).tier() == Some(TierKind::Slow)
                    })
                    .map(|(vpn, _)| vpn)
                    .collect()
            };
            let budget = state.fast_free().min(hot.len() as u64) as usize;
            if budget > 0 {
                state.migrate_background(w, &hot[..budget], TierKind::Fast, &mech);
            }
        }
    }
}

fn run(policy: Box<dyn TieringPolicy>) -> RunResult {
    SimRunner::builder()
        .machine(MachineSpec::paper_testbed())
        .workloads(vec![memcached(), liblinear()])
        .profiler_factory(|_| Box::new(HybridProfiler::vulcan_default()))
        .policy(policy)
        .config(SimConfig {
            n_quanta: 60,
            ..Default::default()
        })
        .build()
        .run()
}

fn main() {
    let greedy = run(Box::new(GreedyHotness { threshold: 8.0 }));
    let vulcan = run(Box::new(VulcanPolicy::new()));

    let mut table = Table::new(
        "custom policy vs vulcan (memcached + liblinear, 60 s)",
        &["policy", "memcached FTHR", "liblinear FTHR", "CFI"],
    );
    for r in [&greedy, &vulcan] {
        table.row(&[
            r.policy.clone(),
            format!("{:.3}", r.workload("memcached").mean_fthr),
            format!("{:.3}", r.workload("liblinear").mean_fthr),
            format!("{:.3}", r.cfi),
        ]);
    }
    table.print();
    println!(
        "\nGreedy hotness fills fast memory first-come-first-served; Vulcan's \
         CBFRP yields a higher fairness index while protecting the LC service."
    );
}
