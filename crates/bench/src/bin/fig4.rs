//! Figure 4: synchronous vs asynchronous page copying for hot-page
//! promotion across read/write ratios (higher is better).
//!
//! Methodology follows §2.2: hot pages are promoted from the slow tier
//! *while the application keeps accessing them* — the working set drifts
//! continuously, so migration pressure never dies down. Asynchronous
//! (transactional) copying excels for read-intensive patterns — no
//! stalls — but write-intensive patterns dirty the copy window, forcing
//! retries/aborts; synchronous copying stalls the accessors but always
//! lands the page.

use vulcan::prelude::*;
use vulcan::runtime::SystemState;

/// Promote every sufficiently hot slow page, one engine or the other.
struct Promoter {
    sync: bool,
}

impl TieringPolicy for Promoter {
    fn name(&self) -> &'static str {
        if self.sync {
            "sync"
        } else {
            "async"
        }
    }

    fn on_quantum(&mut self, state: &mut SystemState) {
        let mech = MechanismConfig::linux_baseline();
        for w in 0..state.n_workloads() {
            state.poll_async(w, &mech);
            // Watermark demotion keeps room for the drifting hot set
            // (off the critical path for both variants).
            if state.fast_free() < 128 {
                let victims: Vec<Vpn> = {
                    let ws = &state.workloads[w];
                    let mut cold: Vec<(Vpn, f64)> = ws
                        .process
                        .space
                        .mapped_vpns()
                        .filter(|&v| ws.process.space.pte(v).tier() == Some(TierKind::Fast))
                        .map(|v| (v, ws.heat().get(v).heat))
                        .collect();
                    cold.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
                    cold.into_iter().take(256).map(|(v, _)| v).collect()
                };
                state.migrate_background(w, &victims, TierKind::Slow, &mech);
            }
            let hot: Vec<Vpn> = {
                let ws = &state.workloads[w];
                ws.heat()
                    .iter()
                    .filter(|(vpn, s)| {
                        s.heat >= 1.0
                            && ws.process.space.pte(*vpn).tier() == Some(TierKind::Slow)
                            && !ws.async_migrator.is_inflight(*vpn)
                    })
                    .map(|(v, _)| v)
                    .collect()
            };
            if hot.is_empty() {
                continue;
            }
            if self.sync {
                state.migrate_sync(w, &hot, TierKind::Fast, &mech);
            } else {
                state.migrate_async(w, &hot, TierKind::Fast);
            }
        }
    }
}

fn run(read_ratio: f64, sync: bool, seed: u64) -> f64 {
    let spec = microbench(
        "mb",
        MicroConfig {
            rss_pages: 2_048,
            wss_pages: 64,
            read_ratio,
            skew: 1.35,   // heavy head: a few pages carry most of the load
            wss_drift: 1, // the hot set keeps moving: sustained promotion
            ..Default::default()
        },
        2,
    )
    .preallocated(TierKind::Slow);
    let res = SimRunner::new(
        MachineSpec::small(1024, 4096, 32),
        vec![spec],
        &mut |_| Box::new(PebsProfiler::new(4)),
        Box::new(Promoter { sync }),
        SimConfig {
            quantum_active: Nanos::millis(1),
            n_quanta: 20,
            seed,
            ..Default::default()
        },
    )
    .run();
    res.workload("mb").mean_ops_per_sec
}

fn main() {
    let ratios = [0.0, 0.25, 0.5, 0.75, 0.9, 1.0];
    let mut table = Table::new(
        "Figure 4: hot-page promotion throughput (ops/s) vs read ratio",
        &["read ratio", "sync copy", "async copy", "async/sync"],
    );
    let mut rows = Vec::new();
    for &r in &ratios {
        let (mut sync_stats, mut async_stats) = (
            vulcan::metrics::OnlineStats::new(),
            vulcan::metrics::OnlineStats::new(),
        );
        for seed in 0..vulcan_bench::trials() {
            sync_stats.push(run(r, true, seed));
            async_stats.push(run(r, false, seed));
        }
        let (s, a) = (sync_stats.mean(), async_stats.mean());
        table.row(&[
            format!("{r:.2}"),
            format!("{s:.0}"),
            format!("{a:.0}"),
            format!("{:.3}", a / s),
        ]);
        rows.push(vulcan_json::Value::Object(
            vulcan_json::Map::new()
                .with("read_ratio", r)
                .with("sync_ops", s)
                .with("async_ops", a)
                .with("sync_ci95", sync_stats.ci95())
                .with("async_ci95", async_stats.ci95()),
        ));
    }
    table.print();
    println!(
        "\nPaper: async wins for read-intensive access (no copy stalls); \
         sync wins for write-intensive access (no dirty retries/aborts)."
    );
    vulcan_bench::save_json("fig4", &rows);
}
