//! `vulcan-bench chaos` — deterministic fault-injection sweeps over the
//! migration/allocation substrate (ISSUE 5).
//!
//! The grid crosses every [`FaultSite`] with a set of fault rates and
//! all four paper policies on a pressured co-location (combined RSS >
//! fast tier, one workload departing mid-run with transactions
//! potentially in flight). Each cell is stepped quantum by quantum so
//! the harness can observe fault tallies as they accrue, then torn down
//! and audited. The sweep asserts the degradation contract end to end:
//!
//! 1. **No panics** — every cell runs to completion under every fault
//!    class at every rate (transient failures requeue, permanent ones
//!    abort-escalate, allocation exhaustion degrades to stall + retry).
//! 2. **Frame conservation** — after tearing every workload down, every
//!    chain tier's allocator reports zero used frames: no fault path
//!    leaks a frame or double-frees one.
//! 3. **FTHR ≥ GPT** — Vulcan's QoS floor survives injected faults
//!    (CBFRP shrinks quotas under sustained capacity faults instead of
//!    over-promising).
//! 4. **Rate-0 identity** — a config with every rate at zero is an
//!    exact no-op: its cells produce results identical to cells with no
//!    fault plan at all. (The driver-level complement — the seed suite
//!    artifact staying byte-identical — is checked in CI by hashing
//!    `target/experiments/suite.json`.)
//!
//! Latency percentiles over the *throttled-quantum* window exercise
//! [`vulcan::metrics::percentile`]'s empty-window path: for every
//! non-throttle fault site the window is legitimately empty and the
//! artifact records `null` rather than the harness dying (the ISSUE 5
//! regression).

use rayon::prelude::*;
use vulcan::prelude::*;
use vulcan::sim::{FaultConfig, FaultSite};
use vulcan_json::{Map, Value};

use crate::suite::ExperimentCell;

/// Tolerance on the FTHR ≥ GPT comparison: both are per-quantum EMAs
/// sampled at slightly different points of the control loop, so a small
/// transient undershoot is measurement skew, not a broken guarantee.
const FTHR_SLACK: f64 = 0.05;

/// Quanta of the FTHR/GPT tail window (the steady state after CBFRP has
/// reacted to the fault pattern).
const TAIL_QUANTA: usize = 5;

/// Scale knobs for the chaos sweep.
#[derive(Clone, Copy, Debug)]
pub struct ChaosOpts {
    /// Fault rates swept per site.
    pub rates: &'static [f64],
    /// Quanta per cell.
    pub quanta: u64,
}

impl ChaosOpts {
    /// The full grid: 3 rates × 7 sites × 4 policies.
    pub fn full() -> Self {
        ChaosOpts {
            rates: &[0.01, 0.1, 0.5],
            quanta: 30,
        }
    }

    /// CI scale: 2 rates, shorter cells.
    pub fn quick() -> Self {
        ChaosOpts {
            rates: &[0.05, 0.5],
            quanta: 12,
        }
    }
}

/// The chaos co-location: a latency-critical front end, a best-effort
/// scan, and a workload that departs mid-run (tearing down under load,
/// with async transactions potentially in flight). Combined RSS (4608
/// pages) exceeds the fast tier (1536), so allocation faults land on a
/// genuinely contended allocator.
fn chaos_specs(quanta: u64) -> Vec<WorkloadSpec> {
    // Preallocated so `rss_pages()` (mapped pages, the GPT denominator)
    // is the full spec RSS from quantum zero — GPT is then a stable,
    // attainable capacity fraction rather than a transient 1.0 while the
    // mapping is still smaller than the guaranteed share.
    let mut lc = microbench(
        "lc",
        MicroConfig {
            rss_pages: 1_536,
            wss_pages: 256,
            read_ratio: 0.9,
            skew: 1.1,
            ..Default::default()
        },
        4,
    )
    .preallocated(TierKind::Slow);
    lc.class = WorkloadClass::LatencyCritical;
    let be = microbench(
        "be",
        MicroConfig {
            rss_pages: 2_048,
            wss_pages: 512,
            read_ratio: 0.5,
            skew: 0.9,
            ..Default::default()
        },
        4,
    )
    .preallocated(TierKind::Slow);
    let dep = microbench(
        "dep",
        MicroConfig {
            rss_pages: 1_024,
            wss_pages: 128,
            ..Default::default()
        },
        2,
    )
    .preallocated(TierKind::Slow)
    .stopping_at(Nanos::millis(quanta / 2));
    vec![lc, be, dep]
}

fn base_cell(kind: PolicyKind, quanta: u64) -> ExperimentCell {
    ExperimentCell::new(kind, chaos_specs(quanta), quanta, 7)
        .on_machine(MachineSpec::small(1_536, 8_192, 8))
        .with_quantum_active(Nanos::millis(1))
}

/// One grid point: `(cell, fault site, rate)`. `site == None` marks the
/// rate-0 control cells.
struct ChaosCell {
    cell: ExperimentCell,
    site: Option<FaultSite>,
    rate: f64,
}

fn chaos_grid(opts: &ChaosOpts) -> Vec<ChaosCell> {
    let mut grid = Vec::new();
    for site in FaultSite::ALL {
        for &rate in opts.rates {
            for kind in PolicyKind::PAPER {
                let mut cell =
                    base_cell(kind, opts.quanta).with_faults(FaultConfig::single(site, rate));
                if site == FaultSite::AllocNvm {
                    // The nvm alloc site can only fire on a machine that
                    // has the tier *and* spills into it: fast + slow
                    // (3584 pages) < combined RSS (4608), so prealloc
                    // overflows down the chain onto nvm.
                    cell = cell.on_machine(MachineSpec::small3(1_536, 2_048, 8_192, 8));
                }
                cell.label = format!("{}/{kind}/r{rate}", site.name());
                grid.push(ChaosCell {
                    cell,
                    site: Some(site),
                    rate,
                });
            }
        }
    }
    grid
}

/// Outcome of one stepped cell: the artifact row plus any contract
/// violations observed.
struct CellOutcome {
    row: Value,
    violations: Vec<String>,
}

fn tail_mean(points: &[(f64, f64)], n: usize) -> Option<f64> {
    if points.is_empty() {
        return None;
    }
    let tail = &points[points.len().saturating_sub(n)..];
    Some(tail.iter().map(|&(_, v)| v).sum::<f64>() / tail.len() as f64)
}

/// Step one cell to completion, audit teardown, and summarize. The
/// stepping (rather than [`ExperimentCell::run`]) is what lets the
/// harness snapshot fault tallies per quantum and inspect the machine
/// after teardown.
fn run_cell(c: &ChaosCell) -> CellOutcome {
    let mut violations = Vec::new();
    let mut runner = c.cell.paused_runner();

    // Per-quantum throttle snapshots: quanta during which a bandwidth
    // throttle fired form the latency window below.
    let throttle_idx = FaultSite::Throttle.index();
    let mut throttled_quanta: Vec<usize> = Vec::new();
    let mut last_throttle = 0u64;
    for q in 0..c.cell.quanta {
        runner.run_quantum();
        let injected = runner.state.machine.faults.stats().injected[throttle_idx];
        if injected > last_throttle {
            throttled_quanta.push(q as usize);
            last_throttle = injected;
        }
    }

    let stats = runner.state.machine.faults.stats().clone();
    let injected: u64 = stats.injected.iter().sum();
    let recovered: u64 = stats.recovered.iter().sum();
    if c.site.is_none() && injected != 0 {
        violations.push(format!(
            "{}: control cell injected {injected} faults",
            c.cell.label
        ));
    }

    // Teardown audit: every workload down, zero frames still allocated
    // on any chain tier.
    for w in 0..runner.state.workloads.len() {
        runner.state.teardown(w);
    }
    for &tier in runner.state.machine.spec().chain() {
        let used = runner.state.machine.allocator(tier).used_frames();
        if used != 0 {
            violations.push(format!(
                "{}: {used} frames leaked at teardown on {}",
                c.cell.label,
                tier.name()
            ));
        }
    }

    let res = runner.into_result();

    // Vulcan's QoS floor: steady-state FTHR stays at or above the
    // guaranteed-page threshold for the resident workloads. The
    // departing workload is excluded (its series ends mid-run).
    if res.policy == "vulcan" {
        for name in ["lc", "be"] {
            let fthr = res.series.get(&format!("{name}.fthr"));
            let gpt = res.series.get(&format!("{name}.gpt"));
            if let (Some(f), Some(g)) = (fthr, gpt) {
                if let (Some(fm), Some(gm)) = (
                    tail_mean(&f.points, TAIL_QUANTA),
                    tail_mean(&g.points, TAIL_QUANTA),
                ) {
                    if fm + FTHR_SLACK < gm {
                        violations.push(format!(
                            "{}: {name} FTHR {fm:.3} below GPT {gm:.3} under faults",
                            c.cell.label
                        ));
                    }
                }
            }
        }
    }

    // Latency percentiles over the throttled-quantum window. Empty for
    // every non-throttle site: `percentile` returns `None` and the row
    // records `null` (the ISSUE 5 empty-window regression path).
    let lat = res.series.get("lc.latency_ns");
    let mut window: Vec<f64> = throttled_quanta
        .iter()
        .filter_map(|&q| lat.and_then(|s| s.points.get(q)).map(|&(_, v)| v))
        .collect();
    let p50 = vulcan::metrics::percentile(&mut window, 50.0);
    let p99 = vulcan::metrics::percentile(&mut window, 99.0);

    let ops_total: u64 = res.per_workload.iter().map(|w| w.ops_total).sum();
    let row = Value::Object(
        Map::new()
            .with("cell", c.cell.label.as_str())
            .with("policy", res.policy.as_str())
            .with("site", c.site.map(FaultSite::name).unwrap_or("none"))
            .with("rate", c.rate)
            .with("cfi", res.cfi)
            .with("ops_total", ops_total)
            .with("injected", injected)
            .with("recovered", recovered)
            .with("throttled_quanta", throttled_quanta.len())
            .with("p50_throttled_latency_ns", p50)
            .with("p99_throttled_latency_ns", p99),
    );
    CellOutcome { row, violations }
}

/// Results of a chaos sweep: artifact rows (declaration order) and every
/// contract violation observed.
pub struct ChaosReport {
    /// One JSON row per grid point (fault cells first, then the rate-0
    /// control cells).
    pub rows: Vec<Value>,
    /// Degradation-contract violations; empty on a passing sweep.
    pub violations: Vec<String>,
}

/// Run the full sweep. Pure — printing and exit codes are the binary's
/// concern (and the tests').
pub fn run_chaos(opts: &ChaosOpts) -> ChaosReport {
    let grid = chaos_grid(opts);
    let outcomes: Vec<CellOutcome> = grid.par_iter().map(run_cell).collect();

    let mut rows = Vec::new();
    let mut violations = Vec::new();
    for o in outcomes {
        rows.push(o.row);
        violations.extend(o.violations);
    }

    // Rate-0 identity: an installed-but-all-zero fault config must be an
    // exact no-op. Both variants share a label so the rows — cfi, ops,
    // percentiles and all — must compare equal value for value.
    let controls: Vec<(CellOutcome, CellOutcome)> = PolicyKind::PAPER
        .into_par_iter()
        .map(|kind| {
            let mut plain = base_cell(kind, opts.quanta);
            plain.label = format!("none/{kind}/r0");
            let zero = {
                let mut c = plain.clone().with_faults(FaultConfig::default());
                c.label = plain.label.clone();
                c
            };
            let plain = ChaosCell {
                cell: plain,
                site: None,
                rate: 0.0,
            };
            let zero = ChaosCell {
                cell: zero,
                site: None,
                rate: 0.0,
            };
            (run_cell(&plain), run_cell(&zero))
        })
        .collect();
    for (plain, zero) in controls {
        if plain.row != zero.row {
            violations.push(format!(
                "rate-0 config diverged from no-fault-plan run: {} vs {}",
                plain.row.to_json(),
                zero.row.to_json()
            ));
        }
        violations.extend(plain.violations);
        violations.extend(zero.violations);
        rows.push(plain.row);
    }

    ChaosReport { rows, violations }
}

/// Render the sweep as a terminal table (one row per grid point).
pub fn chaos_table(rows: &[Value]) -> Table {
    let mut table = Table::new(
        format!(
            "chaos: fault-injection sweep ({} threads)",
            rayon::pool::current_num_threads()
        ),
        &["cell", "policy", "rate", "injected", "recovered", "CFI"],
    );
    for row in rows {
        let s = |k: &str| {
            row.get(k)
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string()
        };
        let u = |k: &str| {
            row.get(k)
                .and_then(Value::as_u64)
                .unwrap_or_default()
                .to_string()
        };
        table.row(&[
            s("cell"),
            s("policy"),
            format!(
                "{:.2}",
                row.get("rate").and_then(Value::as_f64).unwrap_or_default()
            ),
            u("injected"),
            u("recovered"),
            format!(
                "{:.3}",
                row.get("cfi").and_then(Value::as_f64).unwrap_or_default()
            ),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-rate, one-policy-set micro sweep: the full contract on a
    /// grid small enough for CI unit tests.
    #[test]
    fn micro_sweep_upholds_the_degradation_contract() {
        let opts = ChaosOpts {
            rates: &[0.5],
            quanta: 6,
        };
        let report = run_chaos(&opts);
        assert!(
            report.violations.is_empty(),
            "violations: {:?}",
            report.violations
        );
        // 7 sites × 1 rate × 4 policies + 4 rate-0 controls.
        assert_eq!(report.rows.len(), 7 * 4 + 4);
        // At rate 0.5 every fault *site* injected something (individual
        // cells can legitimately stay clean — a policy that has not
        // migrated anything yet cannot hit a copy fault).
        for site in FaultSite::ALL {
            let injected: u64 = report.rows[..28]
                .iter()
                .filter(|r| r.get("site").and_then(Value::as_str) == Some(site.name()))
                .map(|r| r.get("injected").and_then(Value::as_u64).unwrap())
                .sum();
            assert!(injected > 0, "site {} never injected", site.name());
        }
        // Control cells injected nothing.
        for row in &report.rows[28..] {
            assert_eq!(row.get("injected").and_then(Value::as_u64), Some(0));
            assert_eq!(row.get("site").and_then(Value::as_str), Some("none"));
        }
    }

    #[test]
    fn non_throttle_cells_record_null_latency_percentiles() {
        let opts = ChaosOpts {
            rates: &[0.5],
            quanta: 4,
        };
        let report = run_chaos(&opts);
        let copy_row = report
            .rows
            .iter()
            .find(|r| r.get("site").and_then(Value::as_str) == Some("copy_fail"))
            .unwrap();
        assert!(copy_row.get("p50_throttled_latency_ns").unwrap().is_null());
        let throttle_row = report
            .rows
            .iter()
            .find(|r| r.get("site").and_then(Value::as_str) == Some("throttle"))
            .unwrap();
        assert!(!throttle_row
            .get("p50_throttled_latency_ns")
            .unwrap()
            .is_null());
    }
}
