//! Figure 8: migration performance comparison between TPP, MEMTIS, NOMAD
//! and VULCAN across working-set sizes (higher is better).
//!
//! Methodology follows §5.2 / Nomad: data is allocated in the slow tier,
//! then a Zipfian reader/writer runs over the WSS; read and write
//! bandwidth is reported for the *migration-in-progress* phase (first
//! quanta after start, while hot pages move up) and the *migration
//! stable* phase (after placement converges). The sweep lives in
//! [`vulcan_bench::suite::fig8_grid`] (scenario × policy × trial).
//!
//! Paper anchor: Vulcan sustains the highest bandwidth, especially once
//! migration is stable.

use vulcan::prelude::*;
use vulcan_bench::suite::{fig8_grid, SuiteOpts};
use vulcan_bench::{init_threads, save_json_or_exit, trials};

struct Cell {
    read_prog: f64,
    write_prog: f64,
    read_stable: f64,
    write_stable: f64,
}

fn extract(res: &RunResult) -> Cell {
    let phase = |name: &str, lo: f64, hi: f64| {
        let s = res.series.get(name).expect("series");
        let vals: Vec<f64> = s
            .points
            .iter()
            .filter(|&&(t, _)| t >= lo && t < hi)
            .map(|&(_, v)| v)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    Cell {
        read_prog: phase("mb.bw_read_gbps", 1.0, 10.0),
        write_prog: phase("mb.bw_write_gbps", 1.0, 10.0),
        read_stable: phase("mb.bw_read_gbps", 25.0, 40.0),
        write_stable: phase("mb.bw_write_gbps", 25.0, 40.0),
    }
}

fn main() {
    init_threads();
    let n_trials = trials() as usize;
    let results = fig8_grid(&SuiteOpts::full()).run();

    let mut table = Table::new(
        "Figure 8: microbench bandwidth (GB/s): in-migration vs stable",
        &[
            "wss",
            "policy",
            "read(prog)",
            "write(prog)",
            "read(stable)",
            "write(stable)",
        ],
    );
    let mut rows = Vec::new();
    for (si, scenario) in WssScenario::ALL.into_iter().enumerate() {
        for (pi, policy) in PolicyKind::PAPER.into_iter().enumerate() {
            let mut agg = [
                vulcan::metrics::OnlineStats::new(),
                vulcan::metrics::OnlineStats::new(),
                vulcan::metrics::OnlineStats::new(),
                vulcan::metrics::OnlineStats::new(),
            ];
            for trial in 0..n_trials {
                // Grid order: scenario-major, then policy, then trial.
                let idx = (si * PolicyKind::PAPER.len() + pi) * n_trials + trial;
                let c = extract(&results[idx]);
                agg[0].push(c.read_prog);
                agg[1].push(c.write_prog);
                agg[2].push(c.read_stable);
                agg[3].push(c.write_stable);
            }
            table.row(&[
                scenario.label().into(),
                policy.name().into(),
                format!("{:.2}", agg[0].mean()),
                format!("{:.2}", agg[1].mean()),
                format!("{:.2}", agg[2].mean()),
                format!("{:.2}", agg[3].mean()),
            ]);
            rows.push(vulcan_json::Value::Object(
                vulcan_json::Map::new()
                    .with("wss", scenario.label())
                    .with("policy", policy.name())
                    .with("read_in_progress", agg[0].mean())
                    .with("write_in_progress", agg[1].mean())
                    .with("read_stable", agg[2].mean())
                    .with("write_stable", agg[3].mean()),
            ));
        }
    }
    table.print();
    println!(
        "\nPaper: Vulcan shows superior read/write bandwidth, particularly \
         in the migration-stable phase, across all working-set sizes."
    );
    save_json_or_exit("fig8", &rows);
}
