//! Per-page heat tracking with exponential decay.
//!
//! Profilers feed observed accesses into a [`HeatMap`]; migration
//! policies read hot sets and write-intensity out of it. Decay gives the
//! recency weighting that systems like Memtis apply to their access
//! histograms (§2.1: strategies based on "frequency, recency, or a
//! combination of both").

use std::collections::HashMap;
use vulcan_vm::Vpn;

/// Accumulated statistics for one page.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PageStats {
    /// Decayed access heat.
    pub heat: f64,
    /// Sampled reads since tracking began (decayed alongside heat).
    pub reads: f64,
    /// Sampled writes since tracking began (decayed alongside heat).
    pub writes: f64,
}

impl PageStats {
    /// Fraction of sampled accesses that were writes, in `[0, 1]`.
    pub fn write_ratio(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0.0 {
            0.0
        } else {
            self.writes / total
        }
    }

    /// Whether the page counts as write-intensive under `threshold`
    /// (Table 1 classifies pages read- vs write-intensive).
    pub fn write_intensive(&self, threshold: f64) -> bool {
        self.write_ratio() >= threshold
    }
}

/// Decayed per-page heat map.
///
/// ```
/// use vulcan_profile::HeatMap;
/// use vulcan_vm::Vpn;
///
/// let mut heat = HeatMap::new(0.7);
/// heat.record(Vpn(1), false, 10.0);
/// heat.record(Vpn(2), true, 2.0);
/// assert_eq!(heat.hot_set(1), vec![Vpn(1)]);
/// heat.decay_epoch();
/// assert_eq!(heat.get(Vpn(1)).heat, 7.0); // decayed by 0.7
/// ```
#[derive(Clone, Debug)]
pub struct HeatMap {
    pages: HashMap<u64, PageStats>,
    /// Multiplier applied at each epoch (0 = pure frequency of last epoch,
    /// 1 = pure cumulative frequency).
    decay: f64,
}

impl HeatMap {
    /// A heat map with per-epoch decay factor `decay` in `[0, 1]`.
    pub fn new(decay: f64) -> HeatMap {
        assert!((0.0..=1.0).contains(&decay), "decay must be in [0,1]");
        HeatMap {
            pages: HashMap::new(),
            decay,
        }
    }

    /// Record `weight` sampled accesses to `vpn`.
    pub fn record(&mut self, vpn: Vpn, is_write: bool, weight: f64) {
        let s = self.pages.entry(vpn.0).or_default();
        s.heat += weight;
        if is_write {
            s.writes += weight;
        } else {
            s.reads += weight;
        }
    }

    /// Apply one epoch of exponential decay, dropping negligible pages.
    pub fn decay_epoch(&mut self) {
        let d = self.decay;
        self.pages.retain(|_, s| {
            s.heat *= d;
            s.reads *= d;
            s.writes *= d;
            s.heat >= 1e-3
        });
    }

    /// Statistics for one page (zero if never sampled).
    pub fn get(&self, vpn: Vpn) -> PageStats {
        self.pages.get(&vpn.0).copied().unwrap_or_default()
    }

    /// Remove a page's statistics (e.g. after unmap).
    pub fn forget(&mut self, vpn: Vpn) {
        self.pages.remove(&vpn.0);
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Iterate `(vpn, stats)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, &PageStats)> {
        self.pages.iter().map(|(&v, s)| (Vpn(v), s))
    }

    /// The `n` hottest pages, hottest first (ties by VPN for determinism).
    pub fn hottest(&self, n: usize) -> Vec<(Vpn, f64)> {
        let mut v: Vec<(Vpn, f64)> = self.iter().map(|(vpn, s)| (vpn, s.heat)).collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0 .0.cmp(&b.0 .0)));
        v.truncate(n);
        v
    }

    /// The `n` coldest pages among those tracked, coldest first.
    pub fn coldest(&self, n: usize) -> Vec<(Vpn, f64)> {
        let mut v: Vec<(Vpn, f64)> = self.iter().map(|(vpn, s)| (vpn, s.heat)).collect();
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0 .0.cmp(&b.0 .0)));
        v.truncate(n);
        v
    }

    /// Total heat across all pages.
    pub fn total_heat(&self) -> f64 {
        self.pages.values().map(|s| s.heat).sum()
    }

    /// The hot set under a capacity budget: hottest pages whose count fits
    /// `budget_pages` (Memtis-style capacity-based classification).
    pub fn hot_set(&self, budget_pages: usize) -> Vec<Vpn> {
        self.hottest(budget_pages)
            .into_iter()
            .map(|(v, _)| v)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut h = HeatMap::new(0.5);
        h.record(Vpn(1), false, 1.0);
        h.record(Vpn(1), true, 2.0);
        let s = h.get(Vpn(1));
        assert_eq!(s.heat, 3.0);
        assert_eq!(s.reads, 1.0);
        assert_eq!(s.writes, 2.0);
        assert!((s.write_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_page_is_cold() {
        let h = HeatMap::new(0.5);
        assert_eq!(h.get(Vpn(42)), PageStats::default());
        assert_eq!(h.get(Vpn(42)).write_ratio(), 0.0);
    }

    #[test]
    fn decay_halves_and_prunes() {
        let mut h = HeatMap::new(0.5);
        h.record(Vpn(1), false, 8.0);
        h.record(Vpn(2), false, 0.001);
        h.decay_epoch();
        assert_eq!(h.get(Vpn(1)).heat, 4.0);
        assert_eq!(h.len(), 1, "negligible page pruned");
        for _ in 0..20 {
            h.decay_epoch();
        }
        assert!(h.is_empty(), "everything decays away eventually");
    }

    #[test]
    fn hottest_orders_and_breaks_ties_deterministically() {
        let mut h = HeatMap::new(1.0);
        h.record(Vpn(3), false, 5.0);
        h.record(Vpn(1), false, 9.0);
        h.record(Vpn(2), false, 5.0);
        let top = h.hottest(3);
        assert_eq!(top[0].0, Vpn(1));
        assert_eq!(top[1].0, Vpn(2), "tie broken by vpn");
        assert_eq!(top[2].0, Vpn(3));
        assert_eq!(h.hottest(1).len(), 1);
    }

    #[test]
    fn coldest_is_reverse_of_hottest_extremes() {
        let mut h = HeatMap::new(1.0);
        for (v, w) in [(1u64, 1.0), (2, 10.0), (3, 5.0)] {
            h.record(Vpn(v), false, w);
        }
        assert_eq!(h.coldest(1)[0].0, Vpn(1));
        assert_eq!(h.hottest(1)[0].0, Vpn(2));
    }

    #[test]
    fn hot_set_respects_budget() {
        let mut h = HeatMap::new(1.0);
        for v in 0..10u64 {
            h.record(Vpn(v), false, v as f64 + 1.0);
        }
        let hot = h.hot_set(3);
        assert_eq!(hot, vec![Vpn(9), Vpn(8), Vpn(7)]);
    }

    #[test]
    fn write_intensity_threshold() {
        let mut h = HeatMap::new(1.0);
        h.record(Vpn(1), true, 3.0);
        h.record(Vpn(1), false, 7.0);
        assert!(h.get(Vpn(1)).write_intensive(0.3));
        assert!(!h.get(Vpn(1)).write_intensive(0.5));
    }

    #[test]
    fn forget_removes() {
        let mut h = HeatMap::new(1.0);
        h.record(Vpn(1), false, 1.0);
        h.forget(Vpn(1));
        assert!(h.is_empty());
    }

    #[test]
    fn total_heat_sums() {
        let mut h = HeatMap::new(1.0);
        h.record(Vpn(1), false, 2.0);
        h.record(Vpn(2), true, 3.0);
        assert!((h.total_heat() - 5.0).abs() < 1e-12);
    }
}
