//! # vulcan-profile — page-access profiling mechanisms
//!
//! The three profiling families §2.1 surveys — performance-counter
//! sampling (PEBS), page-table scanning, and NUMA hinting faults — plus
//! the PEBS+hint-fault hybrid Vulcan adopts by default (§3.2). All feed a
//! decayed per-page [`HeatMap`] from which policies derive hot sets and
//! read/write intensity.

#![warn(missing_docs)]

pub mod advanced;
pub mod engine;
pub mod heat;
pub mod sampler;

pub use advanced::{ChronoProfiler, TelescopeProfiler};
pub use engine::AnyProfiler;
pub use heat::{HeatMap, HeatReader, PageStats};
pub use sampler::{
    AccessBatch, EpochOutcome, HintFaultProfiler, HybridProfiler, PebsProfiler, Profiler,
    PtScanProfiler, DEFAULT_DECAY,
};
