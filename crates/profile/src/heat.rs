//! Per-page heat tracking with exponential decay.
//!
//! Profilers feed observed accesses into a [`HeatMap`]; migration
//! policies read hot sets and write-intensity out of it. Decay gives the
//! recency weighting that systems like Memtis apply to their access
//! histograms (§2.1: strategies based on "frequency, recency, or a
//! combination of both").
//!
//! # Representation
//!
//! `record` sits on the per-access simulation hot path (every PEBS
//! sample and every hint fault lands here), so the map is *not* a
//! `HashMap`: it is a dense, epoch-versioned flat table indexed
//! directly by VPN. Workload VPNs are footprint-relative offsets
//! starting at zero, so the dense part covers essentially every page;
//! a small open-addressed spill table absorbs sparse outliers above
//! [`DENSE_LIMIT`]. Liveness is an epoch stamp per slot: `decay_epoch`
//! bumps the map epoch and re-stamps survivors, so a pruned page's slot
//! is retired without being written at all, and a later `record`
//! resurrects it from zero exactly like a fresh `HashMap` entry.
//! A `live` key list (first-record order) makes decay sweeps and
//! iteration proportional to the number of tracked pages, not table
//! capacity, and gives the map a deterministic iteration order.

use vulcan_vm::Vpn;

/// VPNs below this go in the dense direct-indexed table (2 Mi pages =
/// 8 GiB of 4 KiB-page footprint); anything above spills to the
/// open-addressed side table.
const DENSE_LIMIT: u64 = 1 << 21;

/// Pages whose decayed heat drops below this are pruned, matching the
/// prior `HashMap::retain` semantics.
const PRUNE_THRESHOLD: f64 = 1e-3;

/// Accumulated statistics for one page.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PageStats {
    /// Decayed access heat.
    pub heat: f64,
    /// Sampled reads since tracking began (decayed alongside heat).
    pub reads: f64,
    /// Sampled writes since tracking began (decayed alongside heat).
    pub writes: f64,
}

impl PageStats {
    /// Fraction of sampled accesses that were writes, in `[0, 1]`.
    pub fn write_ratio(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0.0 {
            0.0
        } else {
            self.writes / total
        }
    }

    /// Whether the page counts as write-intensive under `threshold`
    /// (Table 1 classifies pages read- vs write-intensive).
    pub fn write_intensive(&self, threshold: f64) -> bool {
        self.write_ratio() >= threshold
    }
}

/// One flat-table entry: page statistics plus the liveness epoch stamp.
/// The slot is live iff `stamp` equals the map's current epoch.
#[derive(Clone, Copy, Debug, Default)]
struct Slot {
    stats: PageStats,
    stamp: u64,
}

/// Open-addressed (linear probe) spill table for VPNs above the dense
/// range. Entries are never physically removed — death and `forget` are
/// epoch-stamp transitions — so probing needs no tombstones; the table
/// grows at 70% occupancy of *distinct keys ever inserted*.
#[derive(Clone, Debug)]
struct Spill {
    keys: Vec<u64>,
    slots: Vec<Slot>,
    used: usize,
}

impl Spill {
    const EMPTY: u64 = u64::MAX;

    fn new() -> Spill {
        Spill {
            keys: Vec::new(),
            slots: Vec::new(),
            used: 0,
        }
    }

    /// SplitMix64 finalizer: cheap, deterministic, well-mixed.
    fn hash(key: u64) -> usize {
        let mut x = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        x as usize
    }

    fn find(&self, key: u64) -> Option<usize> {
        if self.keys.is_empty() {
            return None;
        }
        let mask = self.keys.len() - 1;
        let mut i = Self::hash(key) & mask;
        loop {
            match self.keys[i] {
                k if k == key => return Some(i),
                Self::EMPTY => return None,
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// The slot for `key`, inserting an empty one if absent.
    fn slot_mut(&mut self, key: u64) -> &mut Slot {
        debug_assert_ne!(key, Self::EMPTY, "sentinel VPN is unrepresentable");
        if self.keys.is_empty() || (self.used + 1) * 10 > self.keys.len() * 7 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = Self::hash(key) & mask;
        loop {
            match self.keys[i] {
                k if k == key => return &mut self.slots[i],
                Self::EMPTY => {
                    self.keys[i] = key;
                    self.used += 1;
                    return &mut self.slots[i];
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    fn grow(&mut self) {
        let cap = (self.keys.len() * 2).max(64);
        let old_keys = std::mem::replace(&mut self.keys, vec![Self::EMPTY; cap]);
        let old_slots = std::mem::replace(&mut self.slots, vec![Slot::default(); cap]);
        let mask = cap - 1;
        for (key, slot) in old_keys.into_iter().zip(old_slots) {
            if key == Self::EMPTY {
                continue;
            }
            let mut i = Self::hash(key) & mask;
            while self.keys[i] != Self::EMPTY {
                i = (i + 1) & mask;
            }
            self.keys[i] = key;
            self.slots[i] = slot;
        }
    }

    /// Rebuild the table around the slots live at `epoch`, reclaiming
    /// the capacity held by dead keys. `used` counts distinct keys ever
    /// inserted (death is an epoch-stamp transition, not a removal), so
    /// without this a workload churning through sparse VPNs grows the
    /// table with its *history* rather than its live set. Live slots
    /// move verbatim — stats stay byte-identical — and iteration order
    /// lives in `HeatMap::live`, so nothing observable changes.
    fn compact(&mut self, epoch: u64) {
        let live: Vec<(u64, Slot)> = self
            .keys
            .iter()
            .zip(&self.slots)
            .filter(|&(&key, slot)| key != Self::EMPTY && slot.stamp == epoch)
            .map(|(&key, &slot)| (key, slot))
            .collect();
        // Smallest power-of-two capacity keeping the live set under the
        // same 70% bound `slot_mut` grows at.
        let mut cap = 64;
        while (live.len() + 1) * 10 > cap * 7 {
            cap *= 2;
        }
        self.keys = vec![Self::EMPTY; cap];
        self.slots = vec![Slot::default(); cap];
        self.used = live.len();
        let mask = cap - 1;
        for (key, slot) in live {
            let mut i = Self::hash(key) & mask;
            while self.keys[i] != Self::EMPTY {
                i = (i + 1) & mask;
            }
            self.keys[i] = key;
            self.slots[i] = slot;
        }
    }
}

/// Decayed per-page heat map over a dense epoch-versioned flat table.
///
/// ```
/// use vulcan_profile::HeatMap;
/// use vulcan_vm::Vpn;
///
/// let mut heat = HeatMap::new(0.7);
/// heat.record(Vpn(1), false, 10.0);
/// heat.record(Vpn(2), true, 2.0);
/// assert_eq!(heat.hot_set(1), vec![Vpn(1)]);
/// heat.decay_epoch();
/// assert_eq!(heat.get(Vpn(1)).heat, 7.0); // decayed by 0.7
/// ```
#[derive(Clone, Debug)]
pub struct HeatMap {
    /// Multiplier applied at each epoch (0 = pure frequency of last epoch,
    /// 1 = pure cumulative frequency).
    decay: f64,
    /// Current liveness epoch; bumped by [`HeatMap::decay_epoch`].
    epoch: u64,
    /// Dense slots indexed directly by VPN (grown on demand).
    dense: Vec<Slot>,
    /// Spill table for VPNs at or above [`DENSE_LIMIT`].
    spill: Spill,
    /// Keys of currently-live pages in first-record order.
    live: Vec<u64>,
    /// Lockstep reference model (oracle builds only): the exact
    /// `HashMap` semantics this flat table replaced. Every mutation is
    /// mirrored into it and the affected state diffed immediately.
    #[cfg(feature = "oracle")]
    shadow: vulcan_oracle::RefHeat,
}

impl HeatMap {
    /// A heat map with per-epoch decay factor `decay` in `[0, 1]`.
    pub fn new(decay: f64) -> HeatMap {
        assert!((0.0..=1.0).contains(&decay), "decay must be in [0,1]");
        HeatMap {
            decay,
            epoch: 1,
            dense: Vec::new(),
            spill: Spill::new(),
            live: Vec::new(),
            #[cfg(feature = "oracle")]
            shadow: vulcan_oracle::RefHeat::new(),
        }
    }

    /// Pre-size the dense table for a footprint of `pages` pages, so the
    /// first touches of a workload don't pay incremental regrowth.
    pub fn reserve(&mut self, pages: u64) {
        let want = pages.min(DENSE_LIMIT) as usize;
        if want > self.dense.len() {
            self.dense.resize(want.next_power_of_two(), Slot::default());
        }
    }

    /// Record `weight` sampled accesses to `vpn`.
    #[inline]
    pub fn record(&mut self, vpn: Vpn, is_write: bool, weight: f64) {
        let HeatMap {
            epoch,
            dense,
            spill,
            live,
            ..
        } = self;
        let slot = if vpn.0 < DENSE_LIMIT {
            let i = vpn.0 as usize;
            if i >= dense.len() {
                let cap = (i + 1).next_power_of_two().max(1024);
                dense.resize(cap, Slot::default());
            }
            &mut dense[i]
        } else {
            spill.slot_mut(vpn.0)
        };
        if slot.stamp != *epoch {
            // Dead or never-seen slot: resurrect from zero, exactly like
            // a fresh map entry.
            slot.stats = PageStats::default();
            slot.stamp = *epoch;
            live.push(vpn.0);
        }
        slot.stats.heat += weight;
        if is_write {
            slot.stats.writes += weight;
        } else {
            slot.stats.reads += weight;
        }
        #[cfg(feature = "oracle")]
        {
            self.shadow.record(vpn.0, is_write, weight);
            self.oracle_check_key(vpn.0);
        }
    }

    /// Apply one epoch of exponential decay, dropping negligible pages.
    ///
    /// Bumping the epoch retires every slot at once; survivors are
    /// re-stamped during the sweep, so pruned pages cost no writes.
    pub fn decay_epoch(&mut self) {
        self.epoch += 1;
        let d = self.decay;
        let HeatMap {
            epoch,
            dense,
            spill,
            live,
            ..
        } = self;
        let mut live_spill = 0usize;
        live.retain(|&key| {
            let slot = if key < DENSE_LIMIT {
                &mut dense[key as usize]
            } else {
                let i = spill.find(key).expect("live key is in the spill table");
                &mut spill.slots[i]
            };
            slot.stats.heat *= d;
            slot.stats.reads *= d;
            slot.stats.writes *= d;
            if slot.stats.heat >= PRUNE_THRESHOLD {
                slot.stamp = *epoch;
                live_spill += (key >= DENSE_LIMIT) as usize;
                true
            } else {
                false
            }
        });
        // Reclaim spill capacity once dead keys dominate: `used` counts
        // distinct keys ever inserted, so sparse-VPN churn would grow
        // the table forever. The 2× hysteresis (compaction resets
        // `used` to the live count) keeps this amortized O(1).
        if spill.used > (2 * live_spill).max(64) {
            spill.compact(*epoch);
        }
        #[cfg(feature = "oracle")]
        {
            self.shadow.decay(d, PRUNE_THRESHOLD);
            self.oracle_check_live_set();
        }
    }

    fn slot(&self, key: u64) -> Option<&Slot> {
        if key < DENSE_LIMIT {
            self.dense.get(key as usize)
        } else {
            self.spill.find(key).map(|i| &self.spill.slots[i])
        }
    }

    /// Statistics for one page (zero if never sampled).
    #[inline]
    pub fn get(&self, vpn: Vpn) -> PageStats {
        match self.slot(vpn.0) {
            Some(s) if s.stamp == self.epoch => s.stats,
            _ => PageStats::default(),
        }
    }

    /// Remove a page's statistics (e.g. after unmap).
    pub fn forget(&mut self, vpn: Vpn) {
        let epoch = self.epoch;
        let live = match self.slot(vpn.0) {
            Some(s) => s.stamp == epoch,
            None => false,
        };
        if !live {
            return;
        }
        let slot = if vpn.0 < DENSE_LIMIT {
            &mut self.dense[vpn.0 as usize]
        } else {
            let i = self.spill.find(vpn.0).expect("checked above");
            &mut self.spill.slots[i]
        };
        slot.stamp = 0; // 0 is never a current epoch
        self.live.retain(|&k| k != vpn.0);
        #[cfg(feature = "oracle")]
        {
            self.shadow.forget(vpn.0);
            self.oracle_check_key(vpn.0);
            vulcan_oracle::check(
                vulcan_oracle::Structure::Heat,
                self.live.len() == self.shadow.len(),
                Some(vpn.0),
                || {
                    format!(
                        "after forget: flat live count {} != reference {}",
                        self.live.len(),
                        self.shadow.len()
                    )
                },
            );
        }
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Iterate `(vpn, stats)` over live pages in first-record order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, &PageStats)> {
        self.live
            .iter()
            .map(move |&k| (Vpn(k), &self.slot(k).expect("live page has a slot").stats))
    }

    /// The `n` extreme pages under `cmp` (a total order), best first:
    /// select the prefix, then sort only that prefix. Identical output
    /// to sorting everything and truncating, without the full sort.
    fn top_by(
        &self,
        n: usize,
        cmp: impl Fn(&(Vpn, f64), &(Vpn, f64)) -> std::cmp::Ordering,
    ) -> Vec<(Vpn, f64)> {
        let mut v: Vec<(Vpn, f64)> = self.iter().map(|(vpn, s)| (vpn, s.heat)).collect();
        if n == 0 {
            return Vec::new();
        }
        if n < v.len() {
            v.select_nth_unstable_by(n - 1, &cmp);
            v.truncate(n);
        }
        v.sort_by(cmp);
        v
    }

    /// The `n` hottest pages, hottest first (ties by VPN for determinism).
    pub fn hottest(&self, n: usize) -> Vec<(Vpn, f64)> {
        let got = self.top_by(n, |a, b| {
            b.1.partial_cmp(&a.1)
                .expect("heat is never NaN")
                .then(a.0 .0.cmp(&b.0 .0))
        });
        #[cfg(feature = "oracle")]
        self.oracle_check_selection(&got, n, true);
        got
    }

    /// The `n` coldest pages among those tracked, coldest first.
    pub fn coldest(&self, n: usize) -> Vec<(Vpn, f64)> {
        let got = self.top_by(n, |a, b| {
            a.1.partial_cmp(&b.1)
                .expect("heat is never NaN")
                .then(a.0 .0.cmp(&b.0 .0))
        });
        #[cfg(feature = "oracle")]
        self.oracle_check_selection(&got, n, false);
        got
    }

    /// Oracle builds: diff one key's flat-table view against the shadow
    /// `HashMap` model — bitwise, since both sides apply the identical
    /// arithmetic in the identical order.
    #[cfg(feature = "oracle")]
    fn oracle_check_key(&self, key: u64) {
        let got = self.get(Vpn(key));
        let want = self.shadow.get(key);
        vulcan_oracle::check(
            vulcan_oracle::Structure::Heat,
            got.heat == want.heat && got.reads == want.reads && got.writes == want.writes,
            Some(key),
            || format!("flat {got:?} != reference {want:?}"),
        );
    }

    /// Oracle builds: after `decay_epoch`, the surviving live set (and
    /// every survivor's stats) must equal the reference's retained set.
    #[cfg(feature = "oracle")]
    fn oracle_check_live_set(&self) {
        vulcan_oracle::check(
            vulcan_oracle::Structure::Heat,
            self.live.len() == self.shadow.len(),
            None,
            || {
                format!(
                    "after decay: flat live count {} != reference {}",
                    self.live.len(),
                    self.shadow.len()
                )
            },
        );
        for &key in &self.live {
            vulcan_oracle::check(
                vulcan_oracle::Structure::Heat,
                self.shadow.contains(key),
                Some(key),
                || "flat live key not tracked by reference".to_string(),
            );
            self.oracle_check_key(key);
        }
    }

    /// Oracle builds: the `select_nth_unstable_by` selection must equal
    /// a full sort of the reference model.
    #[cfg(feature = "oracle")]
    fn oracle_check_selection(&self, got: &[(Vpn, f64)], n: usize, hottest: bool) {
        let want = self.shadow.top_heat(n, hottest);
        let ok = got.len() == want.len()
            && got
                .iter()
                .zip(&want)
                .all(|(g, w)| g.0 .0 == w.0 && g.1 == w.1);
        vulcan_oracle::check(vulcan_oracle::Structure::Heat, ok, None, || {
            format!("selection (n={n}, hottest={hottest}): flat {got:?} != reference {want:?}")
        });
    }

    /// Capacity of the spill table, in slots (diagnostics; bounded-growth
    /// tests assert churned-through sparse VPNs don't grow it forever).
    pub fn spill_capacity(&self) -> usize {
        self.spill.keys.len()
    }

    /// Total heat across all pages.
    pub fn total_heat(&self) -> f64 {
        self.iter().map(|(_, s)| s.heat).sum()
    }

    /// The hot set under a capacity budget: hottest pages whose count fits
    /// `budget_pages` (Memtis-style capacity-based classification).
    pub fn hot_set(&self, budget_pages: usize) -> Vec<Vpn> {
        self.hottest(budget_pages)
            .into_iter()
            .map(|(v, _)| v)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut h = HeatMap::new(0.5);
        h.record(Vpn(1), false, 1.0);
        h.record(Vpn(1), true, 2.0);
        let s = h.get(Vpn(1));
        assert_eq!(s.heat, 3.0);
        assert_eq!(s.reads, 1.0);
        assert_eq!(s.writes, 2.0);
        assert!((s.write_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_page_is_cold() {
        let h = HeatMap::new(0.5);
        assert_eq!(h.get(Vpn(42)), PageStats::default());
        assert_eq!(h.get(Vpn(42)).write_ratio(), 0.0);
    }

    #[test]
    fn decay_halves_and_prunes() {
        let mut h = HeatMap::new(0.5);
        h.record(Vpn(1), false, 8.0);
        h.record(Vpn(2), false, 0.001);
        h.decay_epoch();
        assert_eq!(h.get(Vpn(1)).heat, 4.0);
        assert_eq!(h.len(), 1, "negligible page pruned");
        for _ in 0..20 {
            h.decay_epoch();
        }
        assert!(h.is_empty(), "everything decays away eventually");
    }

    #[test]
    fn hottest_orders_and_breaks_ties_deterministically() {
        let mut h = HeatMap::new(1.0);
        h.record(Vpn(3), false, 5.0);
        h.record(Vpn(1), false, 9.0);
        h.record(Vpn(2), false, 5.0);
        let top = h.hottest(3);
        assert_eq!(top[0].0, Vpn(1));
        assert_eq!(top[1].0, Vpn(2), "tie broken by vpn");
        assert_eq!(top[2].0, Vpn(3));
        assert_eq!(h.hottest(1).len(), 1);
    }

    #[test]
    fn coldest_is_reverse_of_hottest_extremes() {
        let mut h = HeatMap::new(1.0);
        for (v, w) in [(1u64, 1.0), (2, 10.0), (3, 5.0)] {
            h.record(Vpn(v), false, w);
        }
        assert_eq!(h.coldest(1)[0].0, Vpn(1));
        assert_eq!(h.hottest(1)[0].0, Vpn(2));
    }

    #[test]
    fn hot_set_respects_budget() {
        let mut h = HeatMap::new(1.0);
        for v in 0..10u64 {
            h.record(Vpn(v), false, v as f64 + 1.0);
        }
        let hot = h.hot_set(3);
        assert_eq!(hot, vec![Vpn(9), Vpn(8), Vpn(7)]);
    }

    #[test]
    fn write_intensity_threshold() {
        let mut h = HeatMap::new(1.0);
        h.record(Vpn(1), true, 3.0);
        h.record(Vpn(1), false, 7.0);
        assert!(h.get(Vpn(1)).write_intensive(0.3));
        assert!(!h.get(Vpn(1)).write_intensive(0.5));
    }

    #[test]
    fn forget_removes() {
        let mut h = HeatMap::new(1.0);
        h.record(Vpn(1), false, 1.0);
        h.forget(Vpn(1));
        assert!(h.is_empty());
        assert_eq!(h.get(Vpn(1)), PageStats::default());
    }

    #[test]
    fn total_heat_sums() {
        let mut h = HeatMap::new(1.0);
        h.record(Vpn(1), false, 2.0);
        h.record(Vpn(2), true, 3.0);
        assert!((h.total_heat() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn spill_pages_behave_like_dense_pages() {
        let mut h = HeatMap::new(0.5);
        let far = Vpn(DENSE_LIMIT + 12_345);
        let farther = Vpn(DENSE_LIMIT * 3 + 7);
        h.record(far, false, 8.0);
        h.record(farther, true, 2.0);
        h.record(Vpn(3), false, 4.0);
        assert_eq!(h.len(), 3);
        assert_eq!(h.get(far).heat, 8.0);
        assert_eq!(h.get(farther).writes, 2.0);
        h.decay_epoch();
        assert_eq!(h.get(far).heat, 4.0);
        h.forget(far);
        assert_eq!(h.get(far), PageStats::default());
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn spill_survives_regrowth() {
        let mut h = HeatMap::new(1.0);
        // Enough distinct spill keys to force several table regrowths.
        for i in 0..500u64 {
            h.record(Vpn(DENSE_LIMIT + i * 97), false, i as f64 + 1.0);
        }
        assert_eq!(h.len(), 500);
        for i in 0..500u64 {
            assert_eq!(h.get(Vpn(DENSE_LIMIT + i * 97)).heat, i as f64 + 1.0);
        }
    }

    #[test]
    fn pruned_page_resurrects_from_zero() {
        let mut h = HeatMap::new(0.5);
        h.record(Vpn(9), true, 0.001);
        h.decay_epoch(); // 0.0005 < threshold: pruned
        assert!(h.is_empty());
        h.record(Vpn(9), false, 1.0);
        let s = h.get(Vpn(9));
        assert_eq!(s.heat, 1.0, "no stale heat from the retired slot");
        assert_eq!(s.writes, 0.0, "no stale writes from the retired slot");
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn iteration_order_is_first_record_order() {
        let mut h = HeatMap::new(1.0);
        for v in [5u64, 2, 9, DENSE_LIMIT + 1, 3] {
            h.record(Vpn(v), false, 1.0);
        }
        let order: Vec<u64> = h.iter().map(|(v, _)| v.0).collect();
        assert_eq!(order, vec![5, 2, 9, DENSE_LIMIT + 1, 3]);
    }

    /// The flat table must be observationally identical to the reference
    /// `HashMap` semantics: same survivors, same values, same selections.
    #[test]
    fn matches_reference_hashmap_semantics() {
        use std::collections::HashMap;
        let mut flat = HeatMap::new(0.7);
        let mut reference: HashMap<u64, PageStats> = HashMap::new();
        // Deterministic pseudo-random op stream (LCG).
        let mut x: u64 = 0x1234_5678;
        let mut step = || {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            x >> 33
        };
        for round in 0..50 {
            for _ in 0..200 {
                let r = step();
                let vpn = match r % 10 {
                    0..=7 => r % 512,            // dense
                    8 => DENSE_LIMIT + (r % 64), // spill
                    _ => 1024 + (r % 97),        // dense, sparser
                };
                let write = r % 3 == 0;
                let weight = ((r % 7) + 1) as f64;
                flat.record(Vpn(vpn), write, weight);
                let s = reference.entry(vpn).or_default();
                s.heat += weight;
                if write {
                    s.writes += weight;
                } else {
                    s.reads += weight;
                }
            }
            if round % 3 == 0 {
                flat.decay_epoch();
                reference.retain(|_, s| {
                    s.heat *= 0.7;
                    s.reads *= 0.7;
                    s.writes *= 0.7;
                    s.heat >= 1e-3
                });
            }
            if round % 7 == 0 {
                let victim = step() % 512;
                flat.forget(Vpn(victim));
                reference.remove(&victim);
            }
        }
        assert_eq!(flat.len(), reference.len());
        for (&vpn, s) in &reference {
            assert_eq!(flat.get(Vpn(vpn)), *s, "vpn {vpn}");
        }
        // Selection agrees with a full sort of the reference.
        let mut all: Vec<(u64, f64)> = reference.iter().map(|(&v, s)| (v, s.heat)).collect();
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let want: Vec<(Vpn, f64)> = all.iter().take(10).map(|&(v, h)| (Vpn(v), h)).collect();
        assert_eq!(flat.hottest(10), want);
        all.reverse();
        let want: Vec<(Vpn, f64)> = all.iter().take(10).map(|&(v, h)| (Vpn(v), h)).collect();
        assert_eq!(flat.coldest(10), want);
    }

    #[test]
    fn spill_capacity_stays_bounded_under_churning_sparse_vpns() {
        // Long-run resource regression: `Spill::used` counts distinct
        // keys ever inserted. A workload churning through sparse VPNs
        // (mmap/munmap cycles, drifting footprints) inserts a stream of
        // distinct spill keys that all die at the next decay; without
        // dead-slot reclamation the table grows with *history*, not
        // with the live set.
        let mut h = HeatMap::new(0.0); // decay 0: everything pruned each epoch
        for round in 0..200u64 {
            for i in 0..100u64 {
                h.record(Vpn(DENSE_LIMIT + round * 1_000 + i * 7), false, 1.0);
            }
            h.decay_epoch();
            assert!(h.is_empty(), "decay 0 prunes every page");
        }
        // 20_000 distinct keys ever, zero live. The capacity must track
        // the live set (here: empty), not the insertion history, which
        // would need ≥ 32_768 slots at 70% occupancy.
        assert!(
            h.spill_capacity() <= 1_024,
            "spill capacity {} grew with history, not live set",
            h.spill_capacity()
        );
    }

    #[test]
    fn spill_compaction_preserves_live_stats_bitwise() {
        // Hot spill pages must survive compaction with bit-identical
        // stats while churned-through cold neighbours are reclaimed.
        use std::collections::HashMap;
        let mut h = HeatMap::new(0.5);
        let mut reference: HashMap<u64, PageStats> = HashMap::new();
        let hot: Vec<u64> = (0..40).map(|i| DENSE_LIMIT + 13 + i * 101).collect();
        for round in 0..120u64 {
            for (j, &key) in hot.iter().enumerate() {
                let w = (j + 1) as f64;
                h.record(Vpn(key), j % 3 == 0, w);
                let s = reference.entry(key).or_default();
                s.heat += w;
                if j % 3 == 0 {
                    s.writes += w;
                } else {
                    s.reads += w;
                }
            }
            // Transient sparse keys that die immediately.
            for i in 0..50u64 {
                h.record(
                    Vpn(DENSE_LIMIT + 1_000_000 + round * 500 + i * 9),
                    false,
                    0.001,
                );
            }
            h.decay_epoch();
            reference.retain(|_, s| {
                s.heat *= 0.5;
                s.reads *= 0.5;
                s.writes *= 0.5;
                s.heat >= 1e-3
            });
        }
        assert_eq!(h.len(), reference.len());
        for (&key, want) in &reference {
            assert_eq!(h.get(Vpn(key)), *want, "key {key}");
        }
        assert!(
            h.spill_capacity() <= 2_048,
            "capacity {} tracks history",
            h.spill_capacity()
        );
    }

    #[test]
    fn reserve_presizes_without_changing_semantics() {
        let mut h = HeatMap::new(1.0);
        h.reserve(4_096);
        assert!(h.is_empty());
        h.record(Vpn(4_000), false, 2.0);
        assert_eq!(h.get(Vpn(4_000)).heat, 2.0);
        assert_eq!(h.len(), 1);
    }
}
