//! Physical frame allocation within one tier.
//!
//! A simple stack-based free list with an allocation bitmap, plus the
//! low/high watermark logic that policies like TPP use to trigger
//! proactive demotion (§2.1 "Migration policy").

use crate::tier::TierKind;

/// A physical frame: tier plus index within the tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId {
    /// The tier the frame belongs to.
    pub tier: TierKind,
    /// Frame number within the tier.
    pub index: u32,
}

/// Error returned when a tier has no free frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfFrames {
    /// The exhausted tier.
    pub tier: TierKind,
}

impl std::fmt::Display for OutOfFrames {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "out of frames in {:?} tier", self.tier)
    }
}

impl std::error::Error for OutOfFrames {}

/// Frame allocator for a single tier.
#[derive(Clone, Debug)]
pub struct FrameAllocator {
    tier: TierKind,
    capacity: u32,
    free: Vec<u32>,
    allocated: Vec<bool>,
}

impl FrameAllocator {
    /// Create an allocator managing `capacity` frames of `tier`.
    pub fn new(tier: TierKind, capacity: u64) -> Self {
        let capacity = u32::try_from(capacity).expect("tier capacity fits in u32 frames");
        FrameAllocator {
            tier,
            capacity,
            // Pop from the end => allocate low frame numbers first.
            free: (0..capacity).rev().collect(),
            allocated: vec![false; capacity as usize],
        }
    }

    /// The tier this allocator manages.
    pub fn tier(&self) -> TierKind {
        self.tier
    }

    /// Total frames managed.
    pub fn capacity(&self) -> u64 {
        self.capacity as u64
    }

    /// Frames currently free.
    pub fn free_frames(&self) -> u64 {
        self.free.len() as u64
    }

    /// Frames currently allocated.
    pub fn used_frames(&self) -> u64 {
        self.capacity as u64 - self.free_frames()
    }

    /// Fraction of frames in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            return 0.0;
        }
        self.used_frames() as f64 / self.capacity as f64
    }

    /// Allocate one frame, lowest-numbered free frame first.
    pub fn alloc(&mut self) -> Result<FrameId, OutOfFrames> {
        match self.free.pop() {
            Some(index) => {
                debug_assert!(!self.allocated[index as usize]);
                self.allocated[index as usize] = true;
                Ok(FrameId {
                    tier: self.tier,
                    index,
                })
            }
            None => Err(OutOfFrames { tier: self.tier }),
        }
    }

    /// Build a *lease view*: an allocator over the same tier whose free
    /// list is exactly `lease` (frames already allocated from a parent
    /// allocator). Shard-local machines use this so demand allocations
    /// inside a shard draw from a pre-reserved pool without touching the
    /// shared allocator; unused lease frames are returned to the parent
    /// at merge time (see `Machine::absorb_shard_view`).
    ///
    /// The view allocates the leased frames in lease order (first leased,
    /// first allocated) and panics on a `free` of any non-lease frame —
    /// a shard freeing memory it does not own is a simulator bug.
    pub fn lease_view(tier: TierKind, capacity: u64, lease: &[FrameId]) -> Self {
        let capacity = u32::try_from(capacity).expect("tier capacity fits in u32 frames");
        let mut allocated = vec![false; capacity as usize];
        // Pop from the end => hand out the lease in its original order.
        let free: Vec<u32> = lease
            .iter()
            .rev()
            .map(|f| {
                assert_eq!(f.tier, tier, "leased frame from wrong tier");
                assert!(f.index < capacity, "leased frame out of range");
                f.index
            })
            .collect();
        for &i in &free {
            assert!(!allocated[i as usize], "frame leased twice");
            allocated[i as usize] = true;
        }
        // Leased frames start *free from the view's perspective*; mark
        // them unallocated so alloc/free bookkeeping stays consistent.
        for &i in &free {
            allocated[i as usize] = false;
        }
        FrameAllocator {
            tier,
            capacity,
            free,
            allocated,
        }
    }

    /// Allocate up to `n` frames, returning fewer if the tier fills up.
    pub fn alloc_many(&mut self, n: u64) -> Vec<FrameId> {
        let n = n.min(self.free_frames());
        (0..n)
            .map(|_| self.alloc().expect("reserved above"))
            .collect()
    }

    /// Return a frame to the free list.
    ///
    /// # Panics
    /// Panics on double-free or a frame from another tier — both are
    /// simulator bugs, never workload-dependent conditions.
    pub fn free(&mut self, frame: FrameId) {
        assert_eq!(frame.tier, self.tier, "frame from wrong tier");
        let i = frame.index as usize;
        assert!(i < self.capacity as usize, "frame index out of range");
        assert!(self.allocated[i], "double free of {frame:?}");
        self.allocated[i] = false;
        self.free.push(frame.index);
    }

    /// Whether a frame index is currently allocated.
    pub fn is_allocated(&self, index: u32) -> bool {
        (index as usize) < self.allocated.len() && self.allocated[index as usize]
    }

    /// Whether free capacity has fallen below `fraction` of the total
    /// (watermark check used by TPP-style proactive reclaim).
    pub fn below_watermark(&self, fraction: f64) -> bool {
        (self.free_frames() as f64) < fraction * self.capacity as f64
    }
}

impl vulcan_json::Snapshot for FrameAllocator {
    /// The free list is serialized *in stack order*: which frame the next
    /// `alloc` hands out is behavioral, so the order must survive the
    /// round trip verbatim. The allocation bitmap is its complement and
    /// is rebuilt rather than stored.
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::{snap, Value};
        let free: Vec<u64> = self.free.iter().map(|&i| i as u64).collect();
        snap::obj(vec![
            ("tier", Value::Str(self.tier.name().to_string())),
            ("capacity", snap::u64_value(self.capacity as u64)),
            ("free", snap::u64_array(&free)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        let name = snap::field_str(v, "tier")?;
        let tier = TierKind::from_name(name).ok_or_else(|| format!("unknown tier {name:?}"))?;
        let capacity = u32::try_from(snap::field_u64(v, "capacity")?)
            .map_err(|_| "allocator capacity out of u32 range".to_string())?;
        let mut allocated = vec![true; capacity as usize];
        let mut free = Vec::new();
        for x in snap::array_u64(snap::field(v, "free")?)? {
            let i = u32::try_from(x)
                .ok()
                .filter(|&i| i < capacity)
                .ok_or_else(|| format!("free frame {x} out of range 0..{capacity}"))?;
            if !std::mem::replace(&mut allocated[i as usize], false) {
                return Err(format!("free frame {i} listed twice"));
            }
            free.push(i);
        }
        Ok(FrameAllocator {
            tier,
            capacity,
            free,
            allocated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut a = FrameAllocator::new(TierKind::Fast, 4);
        let f = a.alloc().unwrap();
        assert_eq!(f.tier, TierKind::Fast);
        assert!(a.is_allocated(f.index));
        assert_eq!(a.used_frames(), 1);
        a.free(f);
        assert_eq!(a.used_frames(), 0);
        assert!(!a.is_allocated(f.index));
    }

    #[test]
    fn exhaustion_is_an_error() {
        let mut a = FrameAllocator::new(TierKind::Slow, 2);
        a.alloc().unwrap();
        a.alloc().unwrap();
        assert_eq!(
            a.alloc(),
            Err(OutOfFrames {
                tier: TierKind::Slow
            })
        );
    }

    #[test]
    fn alloc_many_truncates() {
        let mut a = FrameAllocator::new(TierKind::Fast, 3);
        let got = a.alloc_many(10);
        assert_eq!(got.len(), 3);
        assert_eq!(a.free_frames(), 0);
    }

    #[test]
    fn distinct_frames() {
        let mut a = FrameAllocator::new(TierKind::Fast, 100);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(a.alloc().unwrap().index));
        }
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = FrameAllocator::new(TierKind::Fast, 2);
        let f = a.alloc().unwrap();
        a.free(f);
        a.free(f);
    }

    #[test]
    #[should_panic(expected = "wrong tier")]
    fn cross_tier_free_panics() {
        let mut a = FrameAllocator::new(TierKind::Fast, 2);
        a.free(FrameId {
            tier: TierKind::Slow,
            index: 0,
        });
    }

    #[test]
    fn watermark() {
        let mut a = FrameAllocator::new(TierKind::Fast, 10);
        assert!(!a.below_watermark(0.2));
        for _ in 0..9 {
            a.alloc().unwrap();
        }
        assert!(a.below_watermark(0.2)); // 1 free < 2
        assert!((a.utilization() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn freed_frames_are_reusable() {
        let mut a = FrameAllocator::new(TierKind::Fast, 1);
        let f = a.alloc().unwrap();
        a.free(f);
        let g = a.alloc().unwrap();
        assert_eq!(f, g);
    }
}
