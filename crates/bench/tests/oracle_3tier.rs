//! Lockstep oracle verification on a three-tier chain (ISSUE 9).
//!
//! Only meaningful in a `--features oracle` build: every optimized
//! hot-path structure (heat table, walk caches, Zipf sampler, loaded-
//! latency cache) is then diffed against its naive reference model at
//! each step, and the first divergence panics with the structure, VPN
//! and simulated time identified. Running a 3-tier cell to completion
//! therefore *is* the assertion that the chain generalization did not
//! perturb any checked structure — plus an explicit check that the
//! lockstep comparisons actually fired.

#![cfg(feature = "oracle")]

use vulcan::prelude::*;
use vulcan_bench::suite::ExperimentCell;

#[test]
fn three_tier_cell_runs_in_lockstep_with_zero_divergences() {
    vulcan_oracle::reset_checks();
    let specs = vec![
        {
            let mut lc = microbench(
                "lc",
                MicroConfig {
                    rss_pages: 1_024,
                    wss_pages: 256,
                    read_ratio: 0.9,
                    skew: 1.1,
                    ..Default::default()
                },
                4,
            )
            .preallocated(TierKind::Slow);
            lc.class = WorkloadClass::LatencyCritical;
            lc
        },
        bufferpool(
            "bufpool",
            BufferPoolConfig {
                rss_pages: 4_096,
                phase_ops: 128,
                ..Default::default()
            },
            4,
        )
        .preallocated(TierKind::Slow),
    ];
    // Combined RSS (5 120) exceeds fast+slow (3 584): the cell lives on
    // all three tiers, so the checked structures see chain traffic.
    let cell = ExperimentCell::new(PolicyKind::Vulcan, specs, 8, 9)
        .on_machine(MachineSpec::small3(1_536, 2_048, 8_192, 8))
        .with_quantum_active(Nanos::millis(1));
    let res = cell.run(); // any divergence panics inside the run
    assert!(res.per_workload.iter().all(|w| w.ops_total > 0));
    assert!(
        vulcan_oracle::total_checks() > 0,
        "oracle build performed no lockstep checks on the 3-tier cell"
    );
}
