//! Criterion microbenchmarks of the substrate data structures: these
//! bound the simulator's own throughput (accesses simulated per second),
//! which determines how much simulated time the experiment harness can
//! afford.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vulcan::prelude::*;
use vulcan::profile::HeatMap;
use vulcan::vm::{AddressSpace, Asid, LocalTid, Tlb};
use vulcan::workloads::Zipf;

fn bench_tlb(c: &mut Criterion) {
    let mut g = c.benchmark_group("tlb");
    g.throughput(Throughput::Elements(1));
    let mut tlb = Tlb::server_default();
    let asid = Asid(1);
    for v in 0..4096u64 {
        tlb.insert(
            asid,
            Vpn(v),
            vulcan::sim::FrameId {
                tier: TierKind::Fast,
                index: v as u32,
            },
        );
    }
    let mut rng = SmallRng::seed_from_u64(7);
    g.bench_function("lookup_hit_miss_mix", |b| {
        b.iter(|| {
            let v = rng.gen_range(0..8192u64);
            black_box(tlb.lookup(asid, Vpn(v)))
        })
    });
    g.finish();
}

fn bench_page_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_tables");
    g.throughput(Throughput::Elements(1));
    for (label, replication) in [("replicated", true), ("process_wide", false)] {
        let mut space = AddressSpace::new(replication);
        for t in 0..8u8 {
            space.register_thread(LocalTid(t));
        }
        for v in 0..16_384u64 {
            space.map(
                Vpn(v),
                vulcan::sim::FrameId {
                    tier: TierKind::Slow,
                    index: v as u32,
                },
                LocalTid(0),
            );
        }
        let mut rng = SmallRng::seed_from_u64(3);
        g.bench_function(format!("touch_{label}"), |b| {
            b.iter(|| {
                let v = rng.gen_range(0..16_384u64);
                let t = LocalTid(rng.gen_range(0..8u8));
                black_box(space.touch(Vpn(v), t, false))
            })
        });
    }
    g.finish();
}

fn bench_zipf_and_heat(c: &mut Criterion) {
    let mut g = c.benchmark_group("profiling");
    g.throughput(Throughput::Elements(1));
    let zipf = Zipf::new(17_664, 0.99);
    let mut rng = SmallRng::seed_from_u64(11);
    g.bench_function("zipf_sample", |b| {
        b.iter(|| black_box(zipf.sample(&mut rng)))
    });
    let mut heat = HeatMap::new(0.7);
    g.bench_function("heat_record", |b| {
        b.iter(|| {
            let v = zipf.sample(&mut rng);
            heat.record(Vpn(v), false, 16.0);
        })
    });
    for v in 0..17_664u64 {
        heat.record(Vpn(v), false, (v % 97) as f64);
    }
    g.bench_function("heat_hottest_8192", |b| {
        b.iter(|| black_box(heat.hottest(8_192).len()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_tlb, bench_page_tables, bench_zipf_and_heat
}
criterion_main!(benches);
