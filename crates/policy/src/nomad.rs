//! NOMAD (Xiang et al., OSDI'24), §2.1.
//!
//! Model of Nomad's non-exclusive transactional tiering on the shared
//! substrate:
//! * **Transactional async promotion** — hot slow-tier pages are copied
//!   in the background while the application keeps accessing the source;
//!   dirtied pages retry and eventually abort (the [`AsyncMigrator`]
//!   engine), keeping migration entirely off the critical path.
//! * **Page shadowing** — promoted pages retain their slow-tier copy, so
//!   clean demotions are remap-only (the technique §3.5 borrows).
//! * Hotness comes from hinting faults plus sampling, ranked by absolute
//!   counts — like TPP/Memtis, Nomad is workload-agnostic, so it shares
//!   the cold-page-dilemma behaviour under co-location.
//!
//! [`AsyncMigrator`]: vulcan_migrate::AsyncMigrator

use vulcan_migrate::{MechanismConfig, PrepStrategy};
use vulcan_runtime::{SystemState, TieringPolicy};
use vulcan_sim::TierKind;
use vulcan_vm::{ShootdownScope, Vpn};

/// Nomad configuration.
#[derive(Clone, Debug)]
pub struct NomadConfig {
    /// Max async promotions started per workload per quantum.
    pub promotion_budget: usize,
    /// Free-fraction low watermark triggering demotion.
    pub low_watermark: f64,
    /// Free-fraction restored by demotion.
    pub high_watermark: f64,
    /// Minimum heat for a page to be promotion-eligible.
    pub heat_threshold: f64,
}

impl Default for NomadConfig {
    fn default() -> Self {
        NomadConfig {
            promotion_budget: 2_048,
            low_watermark: 0.02,
            high_watermark: 0.08,
            heat_threshold: 1.0,
        }
    }
}

/// The Nomad baseline policy.
#[derive(Clone, Debug, Default)]
pub struct Nomad {
    cfg: NomadConfig,
}

impl Nomad {
    /// Nomad with defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Nomad with a custom configuration.
    pub fn with_config(cfg: NomadConfig) -> Self {
        Nomad { cfg }
    }

    /// Nomad's mechanism: vanilla preparation and process-wide shootdowns
    /// (it does not replicate page tables), but shadowing enabled.
    fn mech() -> MechanismConfig {
        MechanismConfig {
            prep: PrepStrategy::BaselineGlobal,
            scope: ShootdownScope::ProcessWide,
            shadowing: true,
            ..MechanismConfig::linux_baseline()
        }
    }
}

impl TieringPolicy for Nomad {
    fn name(&self) -> &'static str {
        "nomad"
    }

    fn on_quantum(&mut self, state: &mut SystemState) {
        let mech = Self::mech();

        // Drive in-flight transactions first (commits free up the queue).
        for w in 0..state.n_workloads() {
            if state.workloads[w].started {
                state.poll_async(w, &mech);
            }
        }

        // Transactional promotion of hot slow pages, hottest first.
        for w in 0..state.n_workloads() {
            if !state.workloads[w].started || state.fast_free() == 0 {
                continue;
            }
            let candidates: Vec<Vpn> = {
                let ws = &state.workloads[w];
                let mut hot: Vec<(Vpn, f64)> = ws
                    .heat()
                    .iter()
                    .filter(|(vpn, s)| {
                        s.heat >= self.cfg.heat_threshold
                            && ws.process.space.pte(*vpn).tier() == Some(TierKind::Slow)
                            && !ws.async_migrator.is_inflight(*vpn)
                    })
                    .map(|(vpn, s)| (vpn, s.heat))
                    .collect();
                hot.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0 .0.cmp(&b.0 .0)));
                hot.into_iter()
                    .take(self.cfg.promotion_budget)
                    .map(|(v, _)| v)
                    .collect()
            };
            if !candidates.is_empty() {
                state.migrate_async(w, &candidates, TierKind::Fast);
            }
        }

        // Watermark demotion, coldest first; shadow remaps make clean
        // demotions nearly free.
        let capacity = state.fast_capacity() as f64;
        if (state.fast_free() as f64) < self.cfg.low_watermark * capacity {
            let target_free = (self.cfg.high_watermark * capacity) as u64;
            for w in 0..state.n_workloads() {
                if state.fast_free() >= target_free {
                    break;
                }
                if !state.workloads[w].started {
                    continue;
                }
                let need = (target_free - state.fast_free()) as usize;
                let victims: Vec<Vpn> = {
                    let ws = &state.workloads[w];
                    let mut cold: Vec<(Vpn, f64)> = ws
                        .process
                        .space
                        .mapped_vpns()
                        .filter(|&v| ws.process.space.pte(v).tier() == Some(TierKind::Fast))
                        .map(|v| (v, ws.heat().get(v).heat))
                        .collect();
                    cold.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0 .0.cmp(&b.0 .0)));
                    cold.into_iter().take(need).map(|(v, _)| v).collect()
                };
                if !victims.is_empty() {
                    state.migrate_background(w, &victims, TierKind::Slow, &mech);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulcan_profile::HybridProfiler;
    use vulcan_runtime::{SimConfig, SimRunner};
    use vulcan_sim::{MachineSpec, Nanos};
    use vulcan_workloads::{microbench, MicroConfig};

    fn run(read_ratio: f64, n_quanta: u64) -> vulcan_runtime::RunResult {
        SimRunner::builder()
            .machine(MachineSpec::small(128, 4096, 8))
            .workloads(vec![microbench(
                "mb",
                MicroConfig {
                    rss_pages: 512,
                    wss_pages: 64,
                    read_ratio,
                    ..Default::default()
                },
                2,
            )
            .preallocated(vulcan_sim::TierKind::Slow)])
            .profiler_factory(|_| Box::new(HybridProfiler::vulcan_default()))
            .policy(Box::new(Nomad::new()))
            .config(SimConfig {
                quantum_active: Nanos::micros(500),
                n_quanta,
                ..Default::default()
            })
            .build()
            .run()
    }

    #[test]
    fn async_promotion_never_stalls_the_app() {
        let res = run(0.8, 25);
        assert_eq!(res.workload("mb").stall_cycles.0, 0, "fully async");
        let fthr = res.series.get("mb.fthr").unwrap().last().unwrap();
        assert!(fthr > 0.6, "hot set migrated transactionally: {fthr}");
    }

    #[test]
    fn read_intensive_converges_better_than_write_intensive() {
        let read = run(1.0, 25);
        let write = run(0.0, 25);
        let f_read = read.series.get("mb.fthr").unwrap().last().unwrap();
        let f_write = write.series.get("mb.fthr").unwrap().last().unwrap();
        assert!(
            f_read > f_write + 0.05,
            "dirty retries hurt write-heavy migration: read={f_read} write={f_write}"
        );
    }

    #[test]
    fn name() {
        assert_eq!(Nomad::new().name(), "nomad");
    }
}
