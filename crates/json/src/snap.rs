//! Bit-exact snapshot encoding helpers.
//!
//! Checkpoints demand lossless round-trips for every scalar, which the
//! ordinary [`Value`] conversions do not guarantee: `From<u64>` degrades
//! values above `i64::MAX` to a lossy float, and floats written through
//! the human-readable formatter re-parse exactly but carry no contract
//! for NaN payloads or signed zeros. This module therefore encodes
//! `u64` and `f64` as their 64-bit patterns bit-cast into the exact
//! [`Value::Int`] lane: every value — including `u64::MAX`, `-0.0` and
//! NaNs — survives serialize → parse → decode unchanged.
//!
//! The [`Snapshot`] trait is the per-crate hook: state-bearing types
//! implement it (or inherent `snapshot`/`restore` methods when rebuild
//! needs context such as a config) and the runtime's checkpoint module
//! composes the trees into one versioned document.

use crate::{Map, Value};

/// Types whose complete behavioral state round-trips through a
/// [`Value`] tree. `restore(&snapshot(x))` must rebuild a value that is
/// observationally identical to `x` — the restore-replay identity
/// contract leans on every implementation.
pub trait Snapshot: Sized {
    /// Serialize the complete behavioral state.
    fn snapshot(&self) -> Value;

    /// Rebuild from a [`Snapshot::snapshot`] tree.
    fn restore(v: &Value) -> Result<Self, String>;
}

/// Encode a `u64` losslessly (bit-cast into the exact integer lane).
pub fn u64_value(x: u64) -> Value {
    Value::Int(x as i64)
}

/// Decode a [`u64_value`].
pub fn value_u64(v: &Value) -> Result<u64, String> {
    match v {
        Value::Int(i) => Ok(*i as u64),
        other => Err(format!("expected bit-encoded u64, got {other:?}")),
    }
}

/// Encode an `f64` losslessly (IEEE-754 bits in the exact integer lane).
pub fn f64_value(x: f64) -> Value {
    Value::Int(x.to_bits() as i64)
}

/// Decode an [`f64_value`].
pub fn value_f64(v: &Value) -> Result<f64, String> {
    match v {
        Value::Int(i) => Ok(f64::from_bits(*i as u64)),
        other => Err(format!("expected bit-encoded f64, got {other:?}")),
    }
}

/// Encode a `u64` slice losslessly.
pub fn u64_array(xs: &[u64]) -> Value {
    Value::Array(xs.iter().map(|&x| u64_value(x)).collect())
}

/// Decode a [`u64_array`].
pub fn array_u64(v: &Value) -> Result<Vec<u64>, String> {
    v.as_array()
        .ok_or_else(|| format!("expected array of u64, got {v:?}"))?
        .iter()
        .map(value_u64)
        .collect()
}

/// Encode an `f64` slice losslessly.
pub fn f64_array(xs: &[f64]) -> Value {
    Value::Array(xs.iter().map(|&x| f64_value(x)).collect())
}

/// Decode an [`f64_array`].
pub fn array_f64(v: &Value) -> Result<Vec<f64>, String> {
    v.as_array()
        .ok_or_else(|| format!("expected array of f64, got {v:?}"))?
        .iter()
        .map(value_f64)
        .collect()
}

/// Fetch a required field of an object.
pub fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field \"{key}\""))
}

/// Fetch a required bit-encoded `u64` field.
pub fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    value_u64(field(v, key)?).map_err(|e| format!("field \"{key}\": {e}"))
}

/// Fetch a required bit-encoded `f64` field.
pub fn field_f64(v: &Value, key: &str) -> Result<f64, String> {
    value_f64(field(v, key)?).map_err(|e| format!("field \"{key}\": {e}"))
}

/// Fetch a required `usize` field (stored via [`u64_value`]).
pub fn field_usize(v: &Value, key: &str) -> Result<usize, String> {
    Ok(field_u64(v, key)? as usize)
}

/// Fetch a required boolean field.
pub fn field_bool(v: &Value, key: &str) -> Result<bool, String> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| format!("field \"{key}\" must be a boolean"))
}

/// Fetch a required string field.
pub fn field_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| format!("field \"{key}\" must be a string"))
}

/// Fetch a required array field.
pub fn field_array<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| format!("field \"{key}\" must be an array"))
}

/// Build an object from `(key, value)` pairs in order.
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    let mut m = Map::new();
    for (k, v) in pairs {
        m.insert(k, v);
    }
    Value::Object(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn u64_bit_encoding_survives_the_writer() {
        for x in [0u64, 1, i64::MAX as u64, i64::MAX as u64 + 1, u64::MAX] {
            let text = u64_value(x).to_json();
            let back = parse(&text).unwrap();
            assert_eq!(value_u64(&back).unwrap(), x, "{text}");
        }
    }

    #[test]
    fn f64_bit_encoding_is_exact() {
        for x in [0.0f64, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE, f64::MAX] {
            let text = f64_value(x).to_json();
            let back = parse(&text).unwrap();
            assert_eq!(value_f64(&back).unwrap().to_bits(), x.to_bits(), "{text}");
        }
        // NaN payloads survive too — the plain float path would null them.
        let nan = f64::from_bits(0x7ff8_0000_dead_beef);
        let back = parse(&f64_value(nan).to_json()).unwrap();
        assert_eq!(value_f64(&back).unwrap().to_bits(), nan.to_bits());
    }

    #[test]
    fn field_accessors_report_the_key() {
        let v = obj(vec![("a", u64_value(7))]);
        assert_eq!(field_u64(&v, "a").unwrap(), 7);
        let err = field_u64(&v, "b").unwrap_err();
        assert!(err.contains("\"b\""), "{err}");
    }
}
