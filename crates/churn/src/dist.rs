//! Seeded, stateless distributions for the churn engine.
//!
//! Same discipline as `vulcan_sim::faults`: every random decision is a
//! counter hash — `splitmix64(stream_key ^ counter)` — so the schedule
//! of arrivals, lifetimes and template picks depends only on the run
//! seed and the decision index, never on thread count, call order of
//! unrelated streams, or how many decisions another stream has made.
//! Reruns and `--threads 1` vs `--threads 4` sweeps are byte-identical.

/// splitmix64: the standard 64-bit finalizer-based mixer (identical to
/// the private copy in `vulcan_sim::faults`; the constants are the
/// published splitmix64 ones, so both streams stay interchangeable).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The engine's independent decision streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stream {
    /// Exponential interarrival gaps (Poisson arrival process).
    Interarrival,
    /// Pareto tenant lifetimes.
    Lifetime,
    /// Weighted template pick from the catalog.
    Template,
}

/// Number of streams.
pub const N_STREAMS: usize = 3;

impl Stream {
    fn index(self) -> usize {
        match self {
            Stream::Interarrival => 0,
            Stream::Lifetime => 1,
            Stream::Template => 2,
        }
    }
}

/// Per-run stream keys plus per-stream decision counters.
#[derive(Clone, Debug)]
pub struct ChurnStreams {
    streams: [u64; N_STREAMS],
    counters: [u64; N_STREAMS],
}

impl ChurnStreams {
    /// Derive the streams from the run seed. Keys are offset from the
    /// fault plan's site keys (`(i + 1) << 56` there) so enabling fault
    /// injection and churn in the same run never correlates decisions.
    pub fn new(seed: u64) -> ChurnStreams {
        let mut streams = [0u64; N_STREAMS];
        for (i, s) in streams.iter_mut().enumerate() {
            *s = splitmix64(splitmix64(seed) ^ ((i as u64 + 0x10) << 56));
        }
        ChurnStreams {
            streams,
            counters: [0; N_STREAMS],
        }
    }

    /// Next uniform draw in `[0, 1)` from `stream`.
    pub fn uniform(&mut self, stream: Stream) -> f64 {
        let i = stream.index();
        let n = self.counters[i];
        self.counters[i] += 1;
        // Top 53 bits → [0, 1) at full double precision.
        (splitmix64(self.streams[i] ^ n) >> 11) as f64 * 2f64.powi(-53)
    }

    /// Exponential interarrival gap in nanoseconds for a Poisson process
    /// of `rate_per_sec` arrivals per displayed second.
    ///
    /// # Panics
    /// `rate_per_sec` must be positive and finite; a rate-0 engine never
    /// schedules arrivals, so it never draws.
    pub fn exp_interarrival_ns(&mut self, rate_per_sec: f64) -> u64 {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "interarrival draw at rate {rate_per_sec}"
        );
        let u = self.uniform(Stream::Interarrival);
        // Inverse CDF; u < 1 always, so ln(1-u) is finite.
        let secs = -(1.0 - u).ln() / rate_per_sec;
        (secs * 1e9).round() as u64
    }

    /// Heavy-tailed Pareto lifetime in nanoseconds: scale (= minimum
    /// lifetime) `xm_ns`, shape `alpha`. Small `alpha` (≤ 2) gives the
    /// long-lived-tenant tail that makes churn hard on admission.
    pub fn pareto_lifetime_ns(&mut self, xm_ns: u64, alpha: f64) -> u64 {
        assert!(alpha.is_finite() && alpha > 0.0, "pareto shape {alpha}");
        let u = self.uniform(Stream::Lifetime);
        let factor = (1.0 - u).powf(-1.0 / alpha);
        // Cap the tail at 2^62 ns (~146 years): keeps the arithmetic in
        // u64 range without changing any realistic draw.
        let ns = xm_ns as f64 * factor;
        ns.min(4.6e18) as u64
    }
}

impl vulcan_json::Snapshot for ChurnStreams {
    /// Stream keys are seed-derived but travel with the counters so a
    /// restored engine never needs the original seed to keep drawing
    /// from the exact schedule position.
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        snap::obj(vec![
            ("streams", snap::u64_array(&self.streams)),
            ("counters", snap::u64_array(&self.counters)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        fn arr(xs: Vec<u64>, key: &str) -> Result<[u64; N_STREAMS], String> {
            <[u64; N_STREAMS]>::try_from(xs.as_slice())
                .map_err(|_| format!("\"{key}\" needs {N_STREAMS} entries, got {}", xs.len()))
        }
        Ok(ChurnStreams {
            streams: arr(snap::array_u64(snap::field(v, "streams")?)?, "streams")?,
            counters: arr(snap::array_u64(snap::field(v, "counters")?)?, "counters")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = ChurnStreams::new(42);
        let mut b = ChurnStreams::new(42);
        for _ in 0..100 {
            assert_eq!(a.exp_interarrival_ns(2.0), b.exp_interarrival_ns(2.0));
            assert_eq!(
                a.pareto_lifetime_ns(1_000_000_000, 1.5),
                b.pareto_lifetime_ns(1_000_000_000, 1.5)
            );
        }
    }

    #[test]
    fn streams_are_mutually_independent() {
        // Draining one stream must not shift another: counter-hash, not
        // shared RNG state.
        let mut a = ChurnStreams::new(7);
        let mut b = ChurnStreams::new(7);
        for _ in 0..50 {
            a.uniform(Stream::Template);
        }
        assert_eq!(
            a.exp_interarrival_ns(1.0),
            b.exp_interarrival_ns(1.0),
            "template draws shifted the interarrival stream"
        );
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = ChurnStreams::new(1);
        let mut b = ChurnStreams::new(2);
        let same = (0..64)
            .filter(|_| a.uniform(Stream::Lifetime) == b.uniform(Stream::Lifetime))
            .count();
        assert_eq!(same, 0, "nearby seeds must diverge immediately");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut s = ChurnStreams::new(42);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| s.exp_interarrival_ns(4.0)).sum();
        let mean_secs = sum as f64 / n as f64 / 1e9;
        // Mean of Exp(4/s) is 0.25 s; 20k samples pin it within 5%.
        assert!(
            (mean_secs - 0.25).abs() < 0.0125,
            "mean interarrival {mean_secs}s, expected 0.25s"
        );
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let mut s = ChurnStreams::new(42);
        let xm = 2_000_000_000u64; // 2 s
        let draws: Vec<u64> = (0..10_000).map(|_| s.pareto_lifetime_ns(xm, 2.0)).collect();
        assert!(draws.iter().all(|&d| d >= xm), "xm is the minimum");
        // Heavy tail: some lifetimes far beyond the scale.
        assert!(draws.iter().any(|&d| d > 5 * xm));
        // Mean of Pareto(xm, 2) is 2·xm = 4 s; loose 15% band.
        let mean = draws.iter().sum::<u64>() as f64 / draws.len() as f64;
        assert!(
            (mean / 1e9 - 4.0).abs() < 0.6,
            "mean lifetime {}s, expected 4s",
            mean / 1e9
        );
    }

    #[test]
    fn uniform_is_half_open() {
        let mut s = ChurnStreams::new(9);
        for _ in 0..10_000 {
            let u = s.uniform(Stream::Template);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
