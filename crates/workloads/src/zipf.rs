//! Zipfian rank sampling.
//!
//! The paper's migration-policy microbenchmarks generate "memory accesses
//! to the WSS data that mimic real-world memory access patterns with a
//! Zipfian distribution" (§5.2). This sampler precomputes the CDF of a
//! Zipf(s) distribution over `n` ranks and samples by binary search —
//! exact, O(log n) per sample, and deterministic given the RNG.

use rand::Rng;

/// A Zipfian distribution over ranks `0..n` (rank 0 is the hottest).
///
/// ```
/// use rand::{rngs::SmallRng, SeedableRng};
/// use vulcan_workloads::Zipf;
///
/// let zipf = Zipf::new(1000, 0.99);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// assert!(zipf.pmf(0) > zipf.pmf(999)); // the head is hot
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    /// CDF over ranks `0..n`, padded with [`WINDOW`] sentinel entries
    /// (> 1.0, never `< u`) so the branchless window scan in [`Zipf::sample`]
    /// can read a fixed-width slice without bounds concerns.
    cdf: Vec<f64>,
    /// Logical rank count (`cdf.len() - WINDOW`).
    n: usize,
    /// Acceleration index: bucket `b` of the unit interval maps to the
    /// CDF range `index[b]..=index[b + 1]` that provably contains the
    /// partition point of any `u` in that bucket, collapsing the binary
    /// search to a handful of comparisons (the skewed head occupies most
    /// buckets with a zero- or one-element range). Pure speedup: the
    /// sampled rank is bit-identical to a full-range search.
    index: Vec<u32>,
    /// Every index range fits in [`WINDOW`]: sample by a branchless
    /// fixed-width count instead of a (branch-missy) binary search.
    narrow: bool,
    /// Mantissa-domain CDF thresholds, parallel to `cdf`: `cdf_m[k]` is
    /// the smallest 53-bit draw mantissa `m` (u = m·2⁻⁵³) with
    /// `cdf[k] < u`. Lets [`Zipf::resolve_m`] run entirely in integer
    /// arithmetic — same ranks, no float convert/compare latency on the
    /// batched hot path.
    cdf_m: Vec<u64>,
}

/// Buckets in the [`Zipf`] acceleration index.
const INDEX_BUCKETS: usize = 1024;

/// Fixed scan width of the branchless sampling path. Covers skewed
/// distributions (ranges collapse to ~1 entry per bucket); near-uniform
/// CDFs over many ranks exceed it and keep the binary search.
const WINDOW: usize = 8;

/// `2⁵³`: the RNG's f64 draws are `m · 2⁻⁵³` for a 53-bit mantissa `m`
/// (the `rand` shim's `Standard` f64 mapping), which is what makes the
/// mantissa-domain resolve exact.
pub(crate) const MANTISSA_SCALE: f64 = (1u64 << 53) as f64;

impl Zipf {
    /// Zipf with exponent `s` over `n` ranks. `s = 0` degenerates to
    /// uniform; YCSB's default skew is `s ≈ 0.99`.
    pub fn new(n: u64, s: f64) -> Zipf {
        assert!(n > 0, "need at least one rank");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        let index: Vec<u32> = (0..=INDEX_BUCKETS)
            .map(|b| {
                let u = b as f64 / INDEX_BUCKETS as f64;
                u32::try_from(cdf.partition_point(|&c| c < u))
                    .expect("more Zipf ranks than the u32 index can address")
            })
            .collect();
        let narrow = index.windows(2).all(|w| (w[1] - w[0]) as usize <= WINDOW);
        let n = cdf.len();
        cdf.extend(std::iter::repeat_n(2.0, WINDOW));
        // `c < m·2⁻⁵³  ⟺  m > c·2⁵³  ⟺  m ≥ floor(c·2⁵³) + 1`, and the
        // scaling by a power of two is exact in f64, so the integer
        // thresholds reproduce the float comparisons bit-for-bit.
        let cdf_m = cdf
            .iter()
            .map(|&c| (c * MANTISSA_SCALE).floor() as u64 + 1)
            .collect();
        Zipf {
            cdf,
            n,
            index,
            narrow,
            cdf_m,
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n as u64
    }

    /// Draw one rank.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        self.resolve(rng.gen())
    }

    /// Map one already-drawn uniform `u ∈ [0, 1)` to its rank — the
    /// deterministic half of [`Zipf::sample`]. The batched generator
    /// buffers a block of RNG draws first and resolves them through
    /// this, so the (independent) CDF scans overlap in flight instead
    /// of serializing behind the RNG state chain; the rank for a given
    /// `u` is bit-identical either way.
    #[inline]
    pub fn resolve(&self, u: f64) -> u64 {
        // `u` ∈ [0, 1), so the bucket stays in range; the `min` guards
        // against any rounding at the top end.
        let b = ((u * INDEX_BUCKETS as f64) as usize).min(INDEX_BUCKETS - 1);
        let lo = self.index[b] as usize;
        let rank = if self.narrow {
            // Branchless, and exactly `partition_point(|&c| c < u)`:
            // ranks before `lo` all have cdf < u (the bucket's lower
            // bound), ranks at/past the bucket's upper bound all have
            // cdf ≥ u, and the upper bound is within the window — so a
            // fixed-width count over `cdf[lo..lo + WINDOW]` (sentinel-
            // padded) lands on the same rank without data-dependent
            // branches, which is what made the binary search slow.
            let mut k = lo;
            for &c in &self.cdf[lo..lo + WINDOW] {
                k += (c < u) as usize;
            }
            k as u64
        } else {
            let hi = self.index[b + 1] as usize;
            (lo + self.cdf[lo..hi].partition_point(|&c| c < u)) as u64
        };
        #[cfg(feature = "oracle")]
        {
            let full = self.cdf[..self.n].partition_point(|&c| c < u) as u64;
            vulcan_oracle::check(vulcan_oracle::Structure::Zipf, rank == full, None, || {
                format!(
                    "indexed rank {rank} != full partition_point {full} \
                     (u={u}, n={}, narrow={})",
                    self.n, self.narrow
                )
            });
        }
        rank
    }

    /// [`Zipf::resolve`] for a raw 53-bit draw mantissa `m` (the `u` it
    /// maps to is `m · 2⁻⁵³`), entirely in integer arithmetic: the
    /// bucket is a shift and each CDF comparison is one u64 compare
    /// against the precomputed `cdf_m` thresholds. Returns the exact
    /// rank `resolve` would for that draw, without the float-domain
    /// convert/multiply latency — the batched generator's hot path.
    #[inline]
    pub fn resolve_m(&self, m: u64) -> u64 {
        debug_assert!(m < (1u64 << 53));
        // `u·INDEX_BUCKETS = m·2⁻⁴³` and the truncating cast is the
        // same floor, so the bucket matches `resolve` exactly.
        let b = (m >> 43) as usize;
        let lo = self.index[b] as usize;
        let rank = if self.narrow {
            // `c < u ⟺ cdf_m ≤ m`: same count as the float window scan.
            let mut k = lo;
            for &t in &self.cdf_m[lo..lo + WINDOW] {
                k += (t <= m) as usize;
            }
            k as u64
        } else {
            let hi = self.index[b + 1] as usize;
            (lo + self.cdf_m[lo..hi].partition_point(|&t| t <= m)) as u64
        };
        #[cfg(feature = "oracle")]
        {
            let u = m as f64 / MANTISSA_SCALE;
            let full = self.cdf[..self.n].partition_point(|&c| c < u) as u64;
            vulcan_oracle::check(vulcan_oracle::Structure::Zipf, rank == full, None, || {
                format!(
                    "mantissa rank {rank} != full partition_point {full} \
                     (m={m}, n={}, narrow={})",
                    self.n, self.narrow
                )
            });
        }
        rank
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        let k = k as usize;
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 0.99);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_is_monotone_decreasing() {
        let z = Zipf::new(50, 1.2);
        for k in 1..50 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_within_range_and_skewed() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            let k = z.sample(&mut rng);
            assert!(k < 1000);
            counts[k as usize] += 1;
        }
        // Rank 0 must dominate rank 500 heavily under s≈1.
        assert!(counts[0] > 50 * counts[500].max(1));
        // Head concentration: top 10% of ranks gets well over half the mass.
        let head: u64 = counts[..100].iter().sum();
        assert!(head > 60_000, "head={head}");
    }

    #[test]
    fn single_rank_always_sampled() {
        let z = Zipf::new(1, 0.99);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn indexed_search_matches_full_search() {
        // The acceleration index must be a pure speedup: for a dense grid
        // of probabilities the narrowed search returns exactly what a
        // full-range partition_point would.
        for (n, s) in [(1, 0.99), (7, 0.0), (64, 0.8), (1024, 0.99), (5000, 1.2)] {
            let z = Zipf::new(n, s);
            let cdf = &z.cdf[..z.n]; // logical CDF, without sentinel padding
            for i in 0..20_000u64 {
                let u = i as f64 / 20_000.0;
                let b = ((u * 1024.0) as usize).min(1023);
                let lo = z.index[b] as usize;
                let hi = z.index[b + 1] as usize;
                let narrowed = lo + cdf[lo..hi].partition_point(|&c| c < u);
                let full = cdf.partition_point(|&c| c < u);
                assert_eq!(narrowed, full, "n={n} s={s} u={u}");
            }
        }
    }

    #[test]
    fn sample_matches_full_partition_point() {
        // Both sampling paths (branchless window for narrow indexes,
        // binary search otherwise) must reproduce the rank a full-range
        // partition_point yields for the same random draw.
        let mut saw_narrow = false;
        let mut saw_wide = false;
        for (n, s) in [
            (1, 0.99),     // degenerate
            (7, 0.0),      // tiny uniform
            (1_024, 0.9),  // the hit-heavy mix shape (narrow)
            (5_000, 1.2),  // skewed with a cdf-dense tail
            (65_536, 0.0), // wide uniform: buckets of 64 ranks (wide)
        ] {
            let z = Zipf::new(n, s);
            saw_narrow |= z.narrow;
            saw_wide |= !z.narrow;
            let mut ra = SmallRng::seed_from_u64(11);
            let mut rb = SmallRng::seed_from_u64(11);
            for _ in 0..5_000 {
                let got = z.sample(&mut ra);
                let u: f64 = rb.gen();
                let full = z.cdf[..z.n].partition_point(|&c| c < u) as u64;
                assert_eq!(got, full, "n={n} s={s} u={u}");
            }
        }
        assert!(saw_narrow && saw_wide, "both sampling paths exercised");
    }

    #[test]
    fn mantissa_resolve_matches_float_resolve() {
        // Both the narrow window scan and the wide binary-search path,
        // against the exact mantissa↔f64 mapping the rand shim uses.
        for (n, s) in [(1_024, 0.9), (1_024, 0.99), (65_536, 0.0), (65_536, 0.6)] {
            let z = Zipf::new(n, s);
            let mut rng = SmallRng::seed_from_u64(7);
            for _ in 0..20_000 {
                let m = rng.gen::<u64>() >> 11;
                let u = m as f64 * (1.0 / MANTISSA_SCALE);
                assert_eq!(z.resolve_m(m), z.resolve(u), "n={n} s={s} m={m}");
            }
            // Boundary mantissas around each threshold are the cases an
            // off-by-one in `cdf_m` would break.
            for k in 0..z.n.min(64) {
                let t = z.cdf_m[k];
                for m in [t.saturating_sub(1), t, t + 1] {
                    if m < (1u64 << 53) {
                        let u = m as f64 * (1.0 / MANTISSA_SCALE);
                        assert_eq!(z.resolve_m(m), z.resolve(u), "k={k} m={m}");
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let z = Zipf::new(64, 0.8);
        let a: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(42);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(42);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
