//! MEMTIS (Lee et al., SOSP'23), §2.1/§2.2.
//!
//! Model of Memtis's capacity-based classification on the shared
//! substrate: PEBS samples feed per-page access counts; pages are ranked
//! by **absolute** heat *globally across all co-located workloads*, and
//! the hottest pages up to fast-tier capacity form the hot set. Hot pages
//! below are promoted, cold pages above are demoted, both off the
//! critical path (Memtis's kmigrated threads).
//!
//! The global absolute ranking is precisely what Figure 1 indicts: a
//! high-intensity best-effort workload makes its whole working set look
//! "persistently hot" and evicts the latency-critical workload's
//! moderately-hot pages — the cold page dilemma.

use vulcan_migrate::MechanismConfig;
use vulcan_runtime::{SystemState, TieringPolicy};
use vulcan_sim::TierKind;
use vulcan_vm::Vpn;

/// Memtis configuration.
#[derive(Clone, Debug)]
pub struct MemtisConfig {
    /// Fraction of fast capacity the hot set may fill (Memtis keeps a
    /// little headroom for new allocations).
    pub hot_set_fraction: f64,
    /// Max promotions per workload per quantum.
    pub promotion_budget: usize,
}

impl Default for MemtisConfig {
    fn default() -> Self {
        MemtisConfig {
            hot_set_fraction: 0.98,
            promotion_budget: 4_096,
        }
    }
}

/// The Memtis baseline policy.
#[derive(Clone, Debug, Default)]
pub struct Memtis {
    cfg: MemtisConfig,
}

impl Memtis {
    /// Memtis with defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Memtis with a custom configuration.
    pub fn with_config(cfg: MemtisConfig) -> Self {
        Memtis { cfg }
    }
}

impl TieringPolicy for Memtis {
    fn name(&self) -> &'static str {
        "memtis"
    }

    fn on_quantum(&mut self, state: &mut SystemState) {
        let mech = MechanismConfig::linux_baseline();
        let budget = (state.fast_capacity() as f64 * self.cfg.hot_set_fraction) as usize;

        // Global absolute-heat ranking across every workload (the
        // workload-agnostic step that causes the dilemma).
        let mut all: Vec<(usize, Vpn, f64)> = Vec::new();
        for (w, ws) in state.workloads.iter().enumerate() {
            if !ws.started {
                continue;
            }
            for (vpn, s) in ws.heat().iter() {
                if s.heat > 0.0 && ws.process.space.is_mapped(vpn) {
                    all.push((w, vpn, s.heat));
                }
            }
        }
        all.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap()
                .then((a.0, a.1 .0).cmp(&(b.0, b.1 .0)))
        });

        // Hot set = hottest pages up to the capacity budget.
        let hot: Vec<(usize, Vpn)> = all.iter().take(budget).map(|&(w, v, _)| (w, v)).collect();
        let hot_len = hot.len();

        // Cold fast-resident pages (outside the hot set) per workload.
        let mut demote: Vec<Vec<Vpn>> = vec![Vec::new(); state.n_workloads()];
        {
            let mut is_hot: std::collections::HashSet<(usize, u64)> =
                std::collections::HashSet::with_capacity(hot_len);
            for &(w, v) in &hot {
                is_hot.insert((w, v.0));
            }
            for (w, ws) in state.workloads.iter().enumerate() {
                if !ws.started {
                    continue;
                }
                for vpn in ws.process.space.mapped_vpns() {
                    if ws.process.space.pte(vpn).tier() == Some(TierKind::Fast)
                        && !is_hot.contains(&(w, vpn.0))
                    {
                        demote[w].push(vpn);
                    }
                }
            }
        }

        // Promotions: hot pages still in slow memory.
        let mut promote: Vec<Vec<Vpn>> = vec![Vec::new(); state.n_workloads()];
        for &(w, vpn) in &hot {
            if state.workloads[w].process.space.pte(vpn).tier() == Some(TierKind::Slow)
                && promote[w].len() < self.cfg.promotion_budget
            {
                promote[w].push(vpn);
            }
        }

        // Demote first to make room, then promote — both in background.
        let wanted: usize = promote.iter().map(Vec::len).sum();
        let mut freed = state.fast_free() as usize;
        for (w, cold) in demote.iter().enumerate() {
            if freed >= wanted {
                break;
            }
            let take = (wanted - freed).min(cold.len());
            if take > 0 {
                let out = state.migrate_background(w, &cold[..take], TierKind::Slow, &mech);
                freed += out.moved.len();
            }
        }
        for (w, hot) in promote.iter().enumerate() {
            if !hot.is_empty() {
                state.migrate_background(w, hot, TierKind::Fast, &mech);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulcan_profile::PebsProfiler;
    use vulcan_runtime::{SimConfig, SimRunner};
    use vulcan_sim::{MachineSpec, Nanos};
    use vulcan_workloads::{microbench, MicroConfig};

    #[test]
    fn promotes_hot_wss_into_fast() {
        let res = SimRunner::builder()
            .machine(MachineSpec::small(128, 4096, 8))
            .workloads(vec![microbench(
                "mb",
                MicroConfig {
                    rss_pages: 512,
                    wss_pages: 64,
                    skew: 0.99,
                    ..Default::default()
                },
                2,
            )])
            .profiler_factory(|_| Box::new(PebsProfiler::new(4)))
            .policy(Box::new(Memtis::new()))
            .config(SimConfig {
                quantum_active: Nanos::micros(500),
                n_quanta: 25,
                ..Default::default()
            })
            .build()
            .run();
        let fthr = res.series.get("mb.fthr").unwrap().last().unwrap();
        assert!(fthr > 0.85, "hot WSS should end up fast: fthr={fthr}");
        // Off the critical path: no sync stall charged to the app.
        assert_eq!(res.workload("mb").stall_cycles.0, 0);
    }

    #[test]
    fn intense_workload_monopolizes_fast_tier() {
        // Two identical-RSS workloads; "be" issues ~20x the accesses of
        // "lc" per unit time (tiny fixed op cost). Memtis's absolute
        // ranking should hand be nearly the whole fast tier.
        let lc = microbench(
            "lc",
            MicroConfig {
                rss_pages: 256,
                wss_pages: 128,
                fixed_op: Nanos(20_000),
                ..Default::default()
            },
            2,
        );
        let be = microbench(
            "be",
            MicroConfig {
                rss_pages: 256,
                wss_pages: 128,
                fixed_op: Nanos(0),
                ..Default::default()
            },
            2,
        );
        let res = SimRunner::builder()
            .machine(MachineSpec::small(128, 4096, 8))
            .workloads(vec![lc, be])
            .profiler_factory(|_| Box::new(PebsProfiler::new(4)))
            .policy(Box::new(Memtis::new()))
            .config(SimConfig {
                quantum_active: Nanos::micros(500),
                n_quanta: 25,
                ..Default::default()
            })
            .build()
            .run();
        let lc_fast = res.series.get("lc.fast_pages").unwrap().last().unwrap();
        let be_fast = res.series.get("be.fast_pages").unwrap().last().unwrap();
        assert!(
            be_fast > 3.0 * lc_fast.max(1.0),
            "cold page dilemma: be={be_fast} lc={lc_fast}"
        );
    }

    #[test]
    fn name() {
        assert_eq!(Memtis::new().name(), "memtis");
    }
}
