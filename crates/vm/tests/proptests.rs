//! Property-based tests for the virtual-memory substrate.

use proptest::prelude::*;
use vulcan_sim::{CoreId, FrameId, SimThreadId, TierKind, Topology};
use vulcan_vm::{
    shootdown, AddressSpace, Asid, LocalTid, PageOwner, Process, Pte, ShootdownScope, Tlb,
    TlbArray, Vpn,
};

fn arb_frame() -> impl Strategy<Value = FrameId> {
    (any::<bool>(), 0u32..1_000_000).prop_map(|(slow, index)| FrameId {
        tier: if slow { TierKind::Slow } else { TierKind::Fast },
        index,
    })
}

proptest! {
    /// PTE bit packing is lossless for every frame/owner/flag combination.
    #[test]
    fn pte_roundtrip(frame in arb_frame(), tid in 0u8..=0x7E, a in any::<bool>(), d in any::<bool>(), p in any::<bool>()) {
        let mut pte = Pte::new(frame, LocalTid(tid));
        if a { pte = pte.touch(false); }
        if d { pte = pte.touch(true); }
        pte = pte.with_poisoned(p);
        prop_assert!(pte.present());
        prop_assert_eq!(pte.frame(), Some(frame));
        prop_assert_eq!(pte.owner(), PageOwner::Private(LocalTid(tid)));
        prop_assert_eq!(pte.accessed(), a || d);
        prop_assert_eq!(pte.dirty(), d);
        prop_assert_eq!(pte.poisoned(), p);
    }

    /// map → pte → unmap roundtrips for arbitrary sparse vpn sets.
    #[test]
    fn map_unmap_roundtrip(entries in proptest::collection::btree_map(0u64..(1<<30), arb_frame(), 1..64)) {
        let mut s = AddressSpace::new(true);
        for (&v, &f) in &entries {
            s.map(Vpn(v), f, LocalTid(0));
        }
        prop_assert_eq!(s.rss_pages(), entries.len() as u64);
        for (&v, &f) in &entries {
            prop_assert_eq!(s.pte(Vpn(v)).frame(), Some(f));
        }
        // mapped_vpns agrees with the inserted key set.
        let listed: Vec<u64> = s.mapped_vpns().map(|v| v.0).collect();
        let keys: Vec<u64> = entries.keys().copied().collect();
        prop_assert_eq!(listed, keys);
        for (&v, &f) in &entries {
            let old = s.unmap(Vpn(v)).unwrap();
            prop_assert_eq!(old.frame(), Some(f));
        }
        prop_assert_eq!(s.rss_pages(), 0);
    }

    /// Ownership only moves up the lattice: unowned → private → shared,
    /// and the final state is private iff exactly one thread touched.
    #[test]
    fn ownership_lattice_monotone(touches in proptest::collection::vec(0u8..4, 1..32)) {
        let mut s = AddressSpace::new(true);
        s.map(Vpn(7), FrameId { tier: TierKind::Slow, index: 1 }, LocalTid(touches[0]));
        let mut seen_shared = false;
        for &t in &touches {
            let out = s.touch(Vpn(7), LocalTid(t), false).unwrap();
            if seen_shared {
                prop_assert_eq!(out.pte.owner(), PageOwner::Shared, "shared is absorbing");
            }
            if out.pte.owner() == PageOwner::Shared {
                seen_shared = true;
            }
        }
        let distinct: std::collections::BTreeSet<u8> = touches.iter().copied().collect();
        match s.owner(Vpn(7)).unwrap() {
            PageOwner::Private(t) => {
                prop_assert_eq!(distinct.len(), 1);
                prop_assert_eq!(t, LocalTid(touches[0]));
            }
            PageOwner::Shared => prop_assert!(distinct.len() >= 2),
        }
    }

    /// A TLB never returns a translation that was invalidated and never
    /// exceeds its capacity.
    #[test]
    fn tlb_coherence(ops in proptest::collection::vec((0u64..128, any::<bool>()), 1..200)) {
        let mut tlb = Tlb::new(4, 2); // tiny: forces eviction
        let asid = Asid(1);
        let mut shadow: std::collections::HashMap<u64, u32> = Default::default();
        for (i, &(v, invalidate)) in ops.iter().enumerate() {
            if invalidate {
                tlb.invalidate(asid, Vpn(v));
                shadow.remove(&v);
            } else {
                let f = FrameId { tier: TierKind::Fast, index: i as u32 };
                tlb.insert(asid, Vpn(v), f);
                shadow.insert(v, i as u32);
            }
            prop_assert!(tlb.occupancy() <= 8);
        }
        // Lookups may miss (capacity evictions) but a hit must match the
        // last inserted frame — stale frames are a coherence violation.
        for (&v, &idx) in &shadow {
            if let Some(f) = tlb.lookup(asid, Vpn(v)) {
                prop_assert_eq!(f.index, idx);
            }
        }
    }

    /// The walk-cached address space agrees with a flat shadow model
    /// under arbitrary map/unmap/touch interleavings whose VPNs share
    /// and cross leaf regions (a leaf covers 512 pages) — the access
    /// pattern that would expose a stale cached leaf after unmap/remap.
    #[test]
    fn walk_cache_agrees_with_shadow_model(
        replication in any::<bool>(),
        ops in proptest::collection::vec(
            (0usize..12, 0u8..3, 0u8..4, any::<bool>()),
            1..250,
        ),
    ) {
        // Three leaf regions: two adjacent, one far (distinct L1/L2/L3
        // paths), with VPNs inside each sharing a leaf.
        let universe: [u64; 12] = [
            0, 1, 7, 511,            // region 0
            512, 513, 1023,          // region 1
            1 << 30, (1 << 30) + 1,  // far region
            (1 << 30) + 511, 2 << 30, (2 << 30) + 256,
        ];
        let mut s = AddressSpace::new(replication);
        for t in 0..4 {
            s.register_thread(LocalTid(t));
        }
        // Shadow: vpn -> (frame, owner-model, dirty).
        let mut shadow: std::collections::HashMap<u64, (FrameId, PageOwner, bool)> =
            Default::default();
        for (i, &(vi, kind, tid, write)) in ops.iter().enumerate() {
            let v = universe[vi];
            let tid = LocalTid(tid);
            match kind {
                // map (fresh vpns only: remapping a live page is not a
                // supported transition)
                0 => {
                    if let std::collections::hash_map::Entry::Vacant(e) = shadow.entry(v) {
                        let f = FrameId { tier: TierKind::Fast, index: i as u32 };
                        s.map(Vpn(v), f, tid);
                        e.insert((f, PageOwner::Private(tid), false));
                    }
                }
                // unmap
                1 => {
                    let got = s.unmap(Vpn(v));
                    let want = shadow.remove(&v);
                    prop_assert_eq!(got.map(|p| p.frame()), want.map(|(f, _, _)| Some(f)));
                }
                // touch
                _ => {
                    let got = s.touch(Vpn(v), tid, write);
                    match shadow.get_mut(&v) {
                        None => prop_assert!(got.is_none(), "touch of unmapped {v:#x} hit"),
                        Some(entry) => {
                            let out = got.unwrap();
                            prop_assert_eq!(out.pte.frame(), Some(entry.0));
                            if entry.1 != PageOwner::Private(tid) {
                                entry.1 = PageOwner::Shared;
                            }
                            entry.2 |= write;
                            prop_assert_eq!(out.pte.owner(), entry.1);
                        }
                    }
                }
            }
            // Every probe goes through the caches; any stale leaf shows
            // up as a wrong frame or a phantom mapping.
            prop_assert_eq!(s.rss_pages(), shadow.len() as u64);
            for &u in &universe {
                let pte = s.pte(Vpn(u));
                match shadow.get(&u) {
                    Some(&(f, _, dirty)) => {
                        prop_assert_eq!(pte.frame(), Some(f), "vpn {:#x}", u);
                        prop_assert_eq!(pte.dirty(), dirty, "vpn {:#x}", u);
                    }
                    None => prop_assert_eq!(pte.frame(), None, "vpn {:#x}", u),
                }
            }
        }
    }

    /// Targeted shootdown targets are always a subset of process-wide
    /// targets, and shared pages force all-thread coverage.
    #[test]
    fn targeted_subset_of_process_wide(
        n_threads in 1usize..8,
        page_owners in proptest::collection::vec(0u8..8, 1..16),
    ) {
        let mut p = Process::new(Asid(1), true);
        let mut topo = Topology::new(32);
        for i in 0..n_threads {
            let tid = p.spawn_thread(SimThreadId(i as u32));
            topo.pin(SimThreadId(i as u32), CoreId(i as u16));
            let _ = tid;
        }
        let mut pages = Vec::new();
        for (i, &o) in page_owners.iter().enumerate() {
            let vpn = Vpn(i as u64);
            let owner = LocalTid(o % n_threads as u8);
            p.space.map(vpn, FrameId { tier: TierKind::Slow, index: i as u32 }, owner);
            p.space.touch(vpn, owner, false).unwrap();
            pages.push(vpn);
        }
        let wide = shootdown::plan(&p, &topo, &pages, ShootdownScope::ProcessWide);
        let narrow = shootdown::plan(&p, &topo, &pages, ShootdownScope::Targeted);
        prop_assert!(narrow.targets.is_subset(&wide.targets));
        prop_assert!(!narrow.targets.is_empty());
    }

    /// After executing a shootdown, no target core holds any of the pages.
    #[test]
    fn shootdown_clears_targets(pages in proptest::collection::btree_set(0u64..64, 1..16)) {
        let mut p = Process::new(Asid(3), true);
        let mut topo = Topology::new(8);
        for i in 0..4u32 {
            p.spawn_thread(SimThreadId(i));
            topo.pin(SimThreadId(i), CoreId(i as u16));
        }
        let mut tlbs = TlbArray::new(8);
        let vpns: Vec<Vpn> = pages.iter().map(|&v| Vpn(v)).collect();
        for (i, &vpn) in vpns.iter().enumerate() {
            let owner = LocalTid((i % 4) as u8);
            p.space.map(vpn, FrameId { tier: TierKind::Slow, index: i as u32 }, owner);
            p.space.touch(vpn, owner, false).unwrap();
            // Seed every core's TLB with the page.
            for c in 0..8u16 {
                tlbs.core(CoreId(c)).insert(p.asid, vpn, p.space.pte(vpn).frame().unwrap());
            }
        }
        let plan = shootdown::plan(&p, &topo, &vpns, ShootdownScope::ProcessWide);
        shootdown::execute(&plan, &p, &mut tlbs, &vulcan_sim::MigrationCosts::default(),
                           vulcan_vm::ShootdownMode::Batched);
        for &core in &plan.targets {
            for &vpn in &vpns {
                prop_assert_eq!(tlbs.core(core).lookup(p.asid, vpn), None);
            }
        }
    }
}
