//! A simulated process: address space plus thread registry.

use crate::addr::Vpn;
use crate::pte::{LocalTid, PageOwner, MAX_LOCAL_TID};
use crate::table::AddressSpace;
use crate::tlb::Asid;
use vulcan_sim::SimThreadId;

/// A process with its address space and threads.
///
/// Thread ids are dense per-process (`LocalTid`, the PTE's 7-bit field) and
/// map to machine-global [`SimThreadId`]s for topology queries.
#[derive(Clone, Debug)]
pub struct Process {
    /// The process's address-space id (TLB tag).
    pub asid: Asid,
    /// The process's page tables.
    pub space: AddressSpace,
    threads: Vec<SimThreadId>,
}

impl Process {
    /// Create a process; `replication` enables per-thread page tables.
    pub fn new(asid: Asid, replication: bool) -> Process {
        Process {
            asid,
            space: AddressSpace::new(replication),
            threads: Vec::new(),
        }
    }

    /// Register a new thread, returning its per-process id.
    ///
    /// # Panics
    /// Panics past 127 threads — the PTE owner field is 7 bits (§4).
    pub fn spawn_thread(&mut self, sim_id: SimThreadId) -> LocalTid {
        assert!(
            self.threads.len() <= MAX_LOCAL_TID as usize,
            "per-process thread limit is {MAX_LOCAL_TID}"
        );
        let tid = LocalTid(u8::try_from(self.threads.len()).expect("bounded by MAX_LOCAL_TID"));
        self.threads.push(sim_id);
        self.space.register_thread(tid);
        tid
    }

    /// The machine-global id of a thread.
    pub fn sim_thread(&self, tid: LocalTid) -> SimThreadId {
        self.threads[tid.0 as usize]
    }

    /// All thread ids, in spawn order.
    pub fn local_tids(&self) -> impl Iterator<Item = LocalTid> + '_ {
        (0..self.threads.len() as u8).map(LocalTid)
    }

    /// All machine-global thread ids.
    pub fn sim_threads(&self) -> &[SimThreadId] {
        &self.threads
    }

    /// Number of threads.
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }

    /// The threads whose TLBs may cache `vpn`: the private owner only, or
    /// every thread for shared pages. `None` if the page is unmapped.
    ///
    /// This is the information per-thread page-table replication makes
    /// available (§3.4) — the basis for targeted shootdowns.
    pub fn caching_threads(&self, vpn: Vpn) -> Option<Vec<SimThreadId>> {
        match self.space.owner(vpn)? {
            PageOwner::Private(t) => Some(vec![self.sim_thread(t)]),
            PageOwner::Shared => Some(self.threads.clone()),
        }
    }
}

impl vulcan_json::Snapshot for Process {
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::snap;
        let threads: Vec<u64> = self.threads.iter().map(|t| t.0 as u64).collect();
        snap::obj(vec![
            ("asid", snap::u64_value(self.asid.0 as u64)),
            ("space", self.space.snapshot()),
            ("threads", snap::u64_array(&threads)),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        let asid = u16::try_from(snap::field_u64(v, "asid")?)
            .map_err(|_| "asid out of u16 range".to_string())?;
        let threads: Vec<SimThreadId> = snap::array_u64(snap::field(v, "threads")?)?
            .into_iter()
            .map(|t| {
                u32::try_from(t)
                    .map(SimThreadId)
                    .map_err(|_| "thread id out of u32 range".to_string())
            })
            .collect::<Result<_, String>>()?;
        Ok(Process {
            asid: Asid(asid),
            space: AddressSpace::restore(snap::field(v, "space")?)?,
            threads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulcan_sim::{FrameId, TierKind};

    fn proc() -> Process {
        Process::new(Asid(1), true)
    }

    #[test]
    fn spawn_assigns_dense_tids() {
        let mut p = proc();
        assert_eq!(p.spawn_thread(SimThreadId(100)), LocalTid(0));
        assert_eq!(p.spawn_thread(SimThreadId(200)), LocalTid(1));
        assert_eq!(p.sim_thread(LocalTid(1)), SimThreadId(200));
        assert_eq!(p.n_threads(), 2);
        assert_eq!(p.local_tids().count(), 2);
    }

    #[test]
    fn caching_threads_private_vs_shared() {
        let mut p = proc();
        let t0 = p.spawn_thread(SimThreadId(10));
        let t1 = p.spawn_thread(SimThreadId(11));
        p.space.map(
            Vpn(1),
            FrameId {
                tier: TierKind::Slow,
                index: 0,
            },
            t0,
        );
        p.space.touch(Vpn(1), t0, false).unwrap();
        assert_eq!(p.caching_threads(Vpn(1)), Some(vec![SimThreadId(10)]));
        p.space.touch(Vpn(1), t1, false).unwrap();
        assert_eq!(
            p.caching_threads(Vpn(1)),
            Some(vec![SimThreadId(10), SimThreadId(11)])
        );
        assert_eq!(p.caching_threads(Vpn(99)), None);
    }

    #[test]
    fn snapshot_roundtrip_keeps_threads_and_ownership() {
        use vulcan_json::Snapshot;
        let mut p = proc();
        let t0 = p.spawn_thread(SimThreadId(10));
        let t1 = p.spawn_thread(SimThreadId(11));
        p.space.map(
            Vpn(5),
            FrameId {
                tier: TierKind::Fast,
                index: 2,
            },
            t0,
        );
        p.space.touch(Vpn(5), t0, true).unwrap();
        p.space.touch(Vpn(5), t1, false).unwrap();
        let back = Process::restore(&p.snapshot()).expect("restore");
        assert_eq!(back.snapshot(), p.snapshot());
        assert_eq!(back.asid, p.asid);
        assert_eq!(back.n_threads(), 2);
        assert_eq!(back.sim_thread(t1), SimThreadId(11));
        assert_eq!(
            back.caching_threads(Vpn(5)),
            Some(vec![SimThreadId(10), SimThreadId(11)])
        );
    }
}
