//! The paper's §5.3 scenario in miniature: Memcached starts first,
//! PageRank joins at 50 s, Liblinear at 110 s; four tiering systems
//! (TPP, MEMTIS, NOMAD, VULCAN) are compared on per-app performance and
//! on the FTHR-weighted Cumulative Fairness Index.
//!
//! Run with: `cargo run --release --example colocation`

use vulcan::prelude::*;

fn specs() -> Vec<WorkloadSpec> {
    vec![
        memcached(),
        pagerank().starting_at(Nanos::secs(50)),
        liblinear().starting_at(Nanos::secs(110)),
    ]
}

fn policy_by_name(name: &str) -> Box<dyn TieringPolicy> {
    match name {
        "tpp" => Box::new(Tpp::new()),
        "memtis" => Box::new(Memtis::new()),
        "nomad" => Box::new(Nomad::new()),
        "vulcan" => Box::new(VulcanPolicy::new()),
        _ => unreachable!(),
    }
}

fn main() {
    let policies = ["tpp", "memtis", "nomad", "vulcan"];
    let mut rows = Vec::new();

    for name in policies {
        let result = SimRunner::builder()
            .machine(MachineSpec::paper_testbed())
            .workloads(specs())
            .profiler_factory(|_| profiler_for(name))
            .policy(policy_by_name(name))
            .config(SimConfig {
                n_quanta: 200,
                ..Default::default()
            })
            .build()
            .run();
        rows.push(result);
    }

    let mut table = Table::new(
        "three-app co-location, 200 s (staggered starts at 0 / 50 / 110 s)",
        &[
            "policy",
            "memcached perf",
            "pagerank perf",
            "liblinear perf",
            "CFI",
        ],
    );
    for r in &rows {
        table.row(&[
            r.policy.clone(),
            format!("{:.0}", r.workload("memcached").performance()),
            format!("{:.0}", r.workload("pagerank").performance()),
            format!("{:.0}", r.workload("liblinear").performance()),
            format!("{:.3}", r.cfi),
        ]);
    }
    table.print();

    let vulcan = rows.iter().find(|r| r.policy == "vulcan").unwrap();
    let best_other_cfi = rows
        .iter()
        .filter(|r| r.policy != "vulcan")
        .map(|r| r.cfi)
        .fold(0.0_f64, f64::max);
    println!(
        "\nVulcan CFI {:.3} vs best baseline {:.3} — fairness without starving anyone.",
        vulcan.cfi, best_other_cfi
    );
}
