//! The biased page-migration policy: four priority queues plus MLFQ
//! aging (§3.5, Table 1).
//!
//! | Page type | R/W pattern      | Priority | Strategy   |
//! |-----------|------------------|----------|------------|
//! | Private   | Read-intensive   | ★★★★     | Async copy |
//! | Shared    | Read-intensive   | ★★★      | Async copy |
//! | Private   | Write-intensive  | ★★       | Sync copy  |
//! | Shared    | Write-intensive  | ★        | Sync copy  |
//!
//! Private pages need a single-core TLB shootdown; read-intensive pages
//! migrate safely with cheap asynchronous copies. Within a queue, pages
//! drain in heat order; an MLFQ mechanism bumps pages whose heat keeps
//! rising into higher-priority queues so nothing stagnates.

use vulcan_profile::PageStats;
use vulcan_vm::{PageOwner, Vpn};

/// Write-intensity threshold: at or above this write ratio a page is
/// write-intensive (Table 1's R/W pattern split).
pub const WRITE_INTENSIVE_RATIO: f64 = 0.25;

/// The four classes of Table 1, ordered by descending priority.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PageClass {
    /// Private + read-intensive: ★★★★, async copy.
    PrivateRead,
    /// Shared + read-intensive: ★★★, async copy.
    SharedRead,
    /// Private + write-intensive: ★★, sync copy.
    PrivateWrite,
    /// Shared + write-intensive: ★, sync copy.
    SharedWrite,
}

impl PageClass {
    /// All classes, highest priority first.
    pub const ALL: [PageClass; 4] = [
        PageClass::PrivateRead,
        PageClass::SharedRead,
        PageClass::PrivateWrite,
        PageClass::SharedWrite,
    ];

    /// Star rating from Table 1 (4 = highest).
    pub fn stars(self) -> u8 {
        match self {
            PageClass::PrivateRead => 4,
            PageClass::SharedRead => 3,
            PageClass::PrivateWrite => 2,
            PageClass::SharedWrite => 1,
        }
    }

    /// Table 1's migration strategy: async for read-intensive classes.
    pub fn use_async(self) -> bool {
        matches!(self, PageClass::PrivateRead | PageClass::SharedRead)
    }

    /// Queue index (0 = highest priority).
    pub fn index(self) -> usize {
        4 - self.stars() as usize
    }
}

/// Classify a page from its ownership and sampled access pattern.
pub fn classify(owner: PageOwner, stats: &PageStats) -> PageClass {
    let write = stats.write_intensive(WRITE_INTENSIVE_RATIO);
    match (owner, write) {
        (PageOwner::Private(_), false) => PageClass::PrivateRead,
        (PageOwner::Shared, false) => PageClass::SharedRead,
        (PageOwner::Private(_), true) => PageClass::PrivateWrite,
        (PageOwner::Shared, true) => PageClass::SharedWrite,
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    vpn: Vpn,
    heat: f64,
    age: u32,
    class: PageClass,
}

/// The four promotion queues with MLFQ aging.
#[derive(Clone, Debug, Default)]
pub struct PromotionQueues {
    queues: [Vec<Entry>; 4],
    /// Quanta a page must wait before being bumped one queue up.
    aging_quanta: u32,
}

/// Pages drained from the queues, ready to migrate.
#[derive(Clone, Debug, Default)]
pub struct DrainPlan {
    /// Pages to migrate asynchronously (read-intensive classes).
    pub async_pages: Vec<Vpn>,
    /// Pages to migrate synchronously (write-intensive classes).
    pub sync_pages: Vec<Vpn>,
}

impl DrainPlan {
    /// Total pages drained.
    pub fn len(&self) -> usize {
        self.async_pages.len() + self.sync_pages.len()
    }

    /// Whether nothing was drained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl PromotionQueues {
    /// Queues with the default aging interval (2 quanta per bump).
    pub fn new() -> Self {
        PromotionQueues {
            queues: Default::default(),
            aging_quanta: 2,
        }
    }

    /// Re-enqueue this quantum's candidates. Ages carried over from pages
    /// already queued are preserved (the MLFQ memory); pages that
    /// disappeared from the candidate set are dropped.
    pub fn refill(&mut self, candidates: impl IntoIterator<Item = (Vpn, PageClass, f64)>) {
        let mut ages: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for q in &self.queues {
            for e in q {
                ages.insert(e.vpn.0, e.age);
            }
        }
        for q in &mut self.queues {
            q.clear();
        }
        for (vpn, class, heat) in candidates {
            let age = ages.get(&vpn.0).map_or(0, |&a| a + 1);
            // MLFQ: waiting promotes a page `age / aging_quanta` levels.
            let boost = (age / self.aging_quanta.max(1)) as usize;
            let level = class.index().saturating_sub(boost);
            self.queues[level].push(Entry {
                vpn,
                heat,
                age,
                class,
            });
        }
        for q in &mut self.queues {
            q.sort_by(|a, b| {
                b.heat
                    .partial_cmp(&a.heat)
                    .unwrap()
                    .then(a.vpn.0.cmp(&b.vpn.0))
            });
        }
    }

    /// Pages currently queued at `level` (0 = ★★★★), hottest first.
    pub fn level(&self, level: usize) -> Vec<Vpn> {
        self.queues[level].iter().map(|e| e.vpn).collect()
    }

    /// Total queued pages.
    pub fn len(&self) -> usize {
        self.queues.iter().map(Vec::len).sum()
    }

    /// Whether all queues are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Re-enqueue pages whose migration failed transiently (destination
    /// full, injected copy fault), with an MLFQ age bump: a page that
    /// already earned a migration slot should not start over at the
    /// bottom when the mechanism — not the page — failed. The bump is
    /// one full aging interval, so the page sits one level above its
    /// class until it drains, and the carried age keeps the boost across
    /// subsequent refills.
    pub fn note_failed(&mut self, pages: impl IntoIterator<Item = (Vpn, PageClass, f64)>) {
        let mut touched = [false; 4];
        for (vpn, class, heat) in pages {
            let age = self.aging_quanta.max(1);
            let level = class.index().saturating_sub(1);
            // Drop a duplicate still queued at this level (refill dedups
            // naturally; a mid-quantum requeue must not).
            self.queues[level].retain(|e| e.vpn != vpn);
            self.queues[level].push(Entry {
                vpn,
                heat,
                age,
                class,
            });
            touched[level] = true;
        }
        for (level, q) in self.queues.iter_mut().enumerate() {
            if touched[level] {
                q.sort_by(|a, b| {
                    b.heat
                        .partial_cmp(&a.heat)
                        .unwrap()
                        .then(a.vpn.0.cmp(&b.vpn.0))
                });
            }
        }
    }

    /// Drain up to `budget` pages in strict priority order, splitting
    /// them by Table 1's strategy. Drained pages leave the queues.
    pub fn drain(&mut self, budget: usize) -> DrainPlan {
        let mut plan = DrainPlan::default();
        let mut left = budget;
        for q in self.queues.iter_mut() {
            if left == 0 {
                break;
            }
            let take = left.min(q.len());
            for e in q.drain(..take) {
                // MLFQ aging raises a page's *priority*, never its copy
                // strategy: Table 1's async/sync split is about copy
                // safety, which follows the page's original class.
                if e.class.use_async() {
                    plan.async_pages.push(e.vpn);
                } else {
                    plan.sync_pages.push(e.vpn);
                }
            }
            left -= take;
        }
        plan
    }
}

impl vulcan_json::Snapshot for PromotionQueues {
    /// Each queue level serializes as parallel arrays in queue order
    /// (order is behavioral: `drain` takes from the front). Carried ages
    /// are the MLFQ memory; the original class travels with each entry
    /// because an aged page's *level* no longer encodes its copy strategy.
    fn snapshot(&self) -> vulcan_json::Value {
        use vulcan_json::{snap, Value};
        let levels: Vec<Value> = self
            .queues
            .iter()
            .map(|q| {
                let vpns: Vec<u64> = q.iter().map(|e| e.vpn.0).collect();
                let heats: Vec<f64> = q.iter().map(|e| e.heat).collect();
                let ages: Vec<u64> = q.iter().map(|e| u64::from(e.age)).collect();
                let classes: Vec<u64> = q.iter().map(|e| e.class.index() as u64).collect();
                snap::obj(vec![
                    ("vpns", snap::u64_array(&vpns)),
                    ("heats", snap::f64_array(&heats)),
                    ("ages", snap::u64_array(&ages)),
                    ("classes", snap::u64_array(&classes)),
                ])
            })
            .collect();
        snap::obj(vec![
            ("levels", Value::Array(levels)),
            (
                "aging_quanta",
                snap::u64_value(u64::from(self.aging_quanta)),
            ),
        ])
    }

    fn restore(v: &vulcan_json::Value) -> Result<Self, String> {
        use vulcan_json::snap;
        let levels = snap::field_array(v, "levels")?;
        if levels.len() != 4 {
            return Err(format!(
                "expected 4 promotion queues, found {}",
                levels.len()
            ));
        }
        let mut queues: [Vec<Entry>; 4] = Default::default();
        for (level, lv) in levels.iter().enumerate() {
            let vpns = snap::array_u64(snap::field(lv, "vpns")?)?;
            let heats = snap::array_f64(snap::field(lv, "heats")?)?;
            let ages = snap::array_u64(snap::field(lv, "ages")?)?;
            let classes = snap::array_u64(snap::field(lv, "classes")?)?;
            if heats.len() != vpns.len() || ages.len() != vpns.len() || classes.len() != vpns.len()
            {
                return Err(format!("queue {level} arrays have mismatched lengths"));
            }
            for i in 0..vpns.len() {
                let class = *PageClass::ALL
                    .get(classes[i] as usize)
                    .ok_or_else(|| format!("queue {level}: bad class code {}", classes[i]))?;
                queues[level].push(Entry {
                    vpn: Vpn(vpns[i]),
                    heat: heats[i],
                    age: u32::try_from(ages[i])
                        .map_err(|_| format!("queue {level}: age {} out of range", ages[i]))?,
                    class,
                });
            }
        }
        Ok(PromotionQueues {
            queues,
            aging_quanta: u32::try_from(snap::field_u64(v, "aging_quanta")?)
                .map_err(|_| "aging_quanta out of range".to_string())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulcan_vm::LocalTid;

    fn stats(reads: f64, writes: f64) -> PageStats {
        PageStats {
            heat: reads + writes,
            reads,
            writes,
        }
    }

    #[test]
    fn table1_classification() {
        let private = PageOwner::Private(LocalTid(1));
        let shared = PageOwner::Shared;
        assert_eq!(classify(private, &stats(9.0, 1.0)), PageClass::PrivateRead);
        assert_eq!(classify(shared, &stats(9.0, 1.0)), PageClass::SharedRead);
        assert_eq!(classify(private, &stats(1.0, 9.0)), PageClass::PrivateWrite);
        assert_eq!(classify(shared, &stats(1.0, 9.0)), PageClass::SharedWrite);
    }

    #[test]
    fn table1_priorities_and_strategies() {
        assert_eq!(PageClass::PrivateRead.stars(), 4);
        assert_eq!(PageClass::SharedRead.stars(), 3);
        assert_eq!(PageClass::PrivateWrite.stars(), 2);
        assert_eq!(PageClass::SharedWrite.stars(), 1);
        assert!(PageClass::PrivateRead.use_async());
        assert!(PageClass::SharedRead.use_async());
        assert!(!PageClass::PrivateWrite.use_async());
        assert!(!PageClass::SharedWrite.use_async());
        // Read-intensive shared outranks write-intensive private: "the
        // overhead of page copying is lower than that of TLB shootdowns".
        assert!(PageClass::SharedRead.stars() > PageClass::PrivateWrite.stars());
    }

    #[test]
    fn drain_respects_priority_order() {
        let mut q = PromotionQueues::new();
        q.refill([
            (Vpn(1), PageClass::SharedWrite, 100.0),
            (Vpn(2), PageClass::PrivateRead, 1.0),
            (Vpn(3), PageClass::SharedRead, 50.0),
        ]);
        let plan = q.drain(2);
        // Highest-priority queue first even though its page is coldest.
        assert_eq!(plan.async_pages, vec![Vpn(2), Vpn(3)]);
        assert!(plan.sync_pages.is_empty());
        assert_eq!(q.len(), 1, "shared-write page remains queued");
    }

    #[test]
    fn within_queue_heat_order() {
        let mut q = PromotionQueues::new();
        q.refill([
            (Vpn(1), PageClass::PrivateRead, 1.0),
            (Vpn(2), PageClass::PrivateRead, 9.0),
            (Vpn(3), PageClass::PrivateRead, 5.0),
        ]);
        assert_eq!(q.level(0), vec![Vpn(2), Vpn(3), Vpn(1)]);
    }

    #[test]
    fn write_intensive_pages_drain_to_sync() {
        let mut q = PromotionQueues::new();
        q.refill([
            (Vpn(1), PageClass::PrivateWrite, 5.0),
            (Vpn(2), PageClass::SharedWrite, 5.0),
        ]);
        let plan = q.drain(10);
        assert!(plan.async_pages.is_empty());
        assert_eq!(plan.sync_pages, vec![Vpn(1), Vpn(2)]);
    }

    #[test]
    fn mlfq_aging_bumps_stagnant_pages() {
        let mut q = PromotionQueues::new();
        // A shared-write page never drained keeps aging; after enough
        // quanta it reaches the top queue.
        for _ in 0..10 {
            q.refill([(Vpn(7), PageClass::SharedWrite, 1.0)]);
        }
        assert_eq!(q.level(0), vec![Vpn(7)], "aged to the top");
        // But its copy strategy remains sync (write-intensive).
        let plan = q.drain(1);
        assert_eq!(plan.sync_pages, vec![Vpn(7)]);
        assert!(plan.async_pages.is_empty());
    }

    #[test]
    fn refill_drops_stale_candidates() {
        let mut q = PromotionQueues::new();
        q.refill([(Vpn(1), PageClass::PrivateRead, 1.0)]);
        q.refill([(Vpn(2), PageClass::PrivateRead, 1.0)]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.level(0), vec![Vpn(2)]);
    }

    #[test]
    fn note_failed_requeues_with_age_bump() {
        let mut q = PromotionQueues::new();
        q.refill([(Vpn(1), PageClass::SharedWrite, 5.0)]);
        let plan = q.drain(1);
        assert_eq!(plan.sync_pages, vec![Vpn(1)]);
        assert!(q.is_empty());
        // Transient failure: the page returns one level above its class.
        q.note_failed([(Vpn(1), PageClass::SharedWrite, 5.0)]);
        assert_eq!(q.level(PageClass::SharedWrite.index() - 1), vec![Vpn(1)]);
        // The bump persists across the next refill (carried age ≥ one
        // aging interval) instead of resetting to the bottom queue.
        q.refill([(Vpn(1), PageClass::SharedWrite, 5.0)]);
        assert!(
            q.level(PageClass::SharedWrite.index()).is_empty(),
            "failed page does not start over at the bottom"
        );
        // Requeueing a page already queued does not duplicate it.
        q.note_failed([(Vpn(1), PageClass::SharedWrite, 5.0)]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn snapshot_roundtrip_preserves_mlfq_ages() {
        use vulcan_json::Snapshot;
        let mut q = PromotionQueues::new();
        // Age a shared-write page partway up the ladder, keep a fresh
        // read page in its home queue, and requeue a transient failure —
        // three distinct (age, level, class) shapes in one snapshot.
        for _ in 0..4 {
            q.refill([
                (Vpn(7), PageClass::SharedWrite, 1.0),
                (Vpn(2), PageClass::PrivateRead, 9.0),
            ]);
        }
        q.note_failed([(Vpn(5), PageClass::PrivateWrite, 3.0)]);
        let snap_v = q.snapshot();
        let mut back = PromotionQueues::restore(&snap_v).unwrap();
        assert_eq!(back.snapshot(), snap_v, "idempotent round trip");
        // Continuation: the carried ages drive the next refill's levels
        // and the original classes drive the async/sync split.
        let cands = [
            (Vpn(7), PageClass::SharedWrite, 1.0),
            (Vpn(2), PageClass::PrivateRead, 9.0),
            (Vpn(5), PageClass::PrivateWrite, 3.0),
        ];
        q.refill(cands);
        back.refill(cands);
        for level in 0..4 {
            assert_eq!(back.level(level), q.level(level), "level {level}");
        }
        let (p1, p2) = (q.drain(8), back.drain(8));
        assert_eq!(p1.async_pages, p2.async_pages);
        assert_eq!(p1.sync_pages, p2.sync_pages);
    }

    #[test]
    fn restore_rejects_bad_class_code() {
        use vulcan_json::{Snapshot, Value};
        let mut q = PromotionQueues::new();
        q.refill([(Vpn(1), PageClass::PrivateRead, 1.0)]);
        let Value::Object(mut o) = q.snapshot() else {
            panic!("snapshot is an object")
        };
        let Some(Value::Array(levels)) = o.get("levels").cloned() else {
            panic!("levels is an array")
        };
        let mut levels = levels;
        let Value::Object(l0) = &mut levels[0] else {
            panic!("level is an object")
        };
        l0.insert("classes", vulcan_json::snap::u64_array(&[9]));
        o.insert("levels", Value::Array(levels));
        let err = PromotionQueues::restore(&Value::Object(o)).unwrap_err();
        assert!(err.contains("bad class code"), "{err}");
    }

    #[test]
    fn budget_limits_drain() {
        let mut q = PromotionQueues::new();
        q.refill((0..10).map(|i| (Vpn(i), PageClass::PrivateRead, i as f64)));
        let plan = q.drain(3);
        assert_eq!(plan.len(), 3);
        assert_eq!(q.len(), 7);
        let empty = PromotionQueues::new().drain(5);
        assert!(empty.is_empty());
    }
}
