//! Property-based tests for Vulcan's partitioning and policy math.

use proptest::prelude::*;
use vulcan_core::{demand, gfmc, gpt, Cbfrp, Classifier, PageClass, ServiceClass};
use vulcan_profile::PageStats;
use vulcan_vm::{LocalTid, PageOwner};

fn arb_classes(n: usize) -> impl Strategy<Value = Vec<ServiceClass>> {
    proptest::collection::vec(
        prop_oneof![
            Just(ServiceClass::LatencyCritical),
            Just(ServiceClass::BestEffort)
        ],
        n..=n,
    )
}

proptest! {
    /// CBFRP never over-commits, never produces negative allocations,
    /// never grants a workload more than it demanded, and keeps the
    /// credit ledger zero-sum — across arbitrary multi-round histories.
    #[test]
    fn cbfrp_invariants(
        rounds in proptest::collection::vec(
            proptest::collection::vec(0u64..20_000, 4..=4), 1..12),
        classes in arb_classes(4),
        gfmc_pages in 1u64..5_000,
        unit in 1u64..256,
    ) {
        let mut cbfrp = Cbfrp::new(4, unit);
        for demands in &rounds {
            let p = cbfrp.partition(demands, &classes, &[true; 4], gfmc_pages);
            let total: u64 = p.alloc.iter().sum();
            prop_assert!(total <= 4 * gfmc_pages, "over-committed: {total}");
            for (granted, demand) in p.alloc.iter().zip(demands) {
                prop_assert!(granted <= demand, "granted beyond demand");
            }
            let credit_sum: i64 = cbfrp.credits().iter().sum();
            prop_assert_eq!(credit_sum, 0, "ledger must be zero-sum");
        }
    }

    /// Everyone demanding at most the entitlement gets exactly their
    /// demand (no transfers needed, no credits move).
    #[test]
    fn cbfrp_within_entitlement_is_identity(
        demands in proptest::collection::vec(0u64..1_000, 4..=4),
        classes in arb_classes(4),
    ) {
        let mut cbfrp = Cbfrp::new(4, 16);
        let p = cbfrp.partition(&demands, &classes, &[true; 4], 1_000);
        prop_assert_eq!(p.alloc, demands);
        prop_assert_eq!(cbfrp.credits(), &[0, 0, 0, 0]);
    }

    /// An LC borrower is never worse off than a BE borrower with the
    /// same demand in the same round.
    #[test]
    fn cbfrp_lc_dominates_equal_be(
        demand in 1_000u64..10_000,
        others in proptest::collection::vec(0u64..3_000, 2..=2),
    ) {
        let mut cbfrp = Cbfrp::new(4, 16);
        let demands = [demand, demand, others[0], others[1]];
        let classes = [
            ServiceClass::LatencyCritical,
            ServiceClass::BestEffort,
            ServiceClass::BestEffort,
            ServiceClass::BestEffort,
        ];
        let p = cbfrp.partition(&demands, &classes, &[true; 4], 1_000);
        prop_assert!(p.alloc[0] >= p.alloc[1], "{:?}", p.alloc);
    }

    /// GPT is in (0, 1], monotone in GFMC and antitone in RSS.
    #[test]
    fn gpt_bounds_and_monotonicity(g in 1u64..100_000, r in 1u64..100_000) {
        let v = gpt(g, r);
        prop_assert!(v > 0.0 && v <= 1.0);
        prop_assert!(gpt(g + 1, r) >= v - 1e-12);
        prop_assert!(gpt(g, r + 1) <= v + 1e-12);
    }

    /// Equation 3's demand is always within [0, RSS] and moves in the
    /// direction of the GPT-FTHR gap.
    #[test]
    fn demand_clamped_and_directional(
        alloc in 0u64..50_000,
        gpt_v in 0.0f64..=1.0,
        fthr in 0.0f64..=1.0,
        rss in 1u64..50_000,
    ) {
        let d = demand(alloc, gpt_v, fthr, rss);
        prop_assert!(d <= rss);
        let alloc = alloc.min(rss);
        if gpt_v > fthr + 1e-9 {
            prop_assert!(d >= alloc.min(rss), "under-served must not shrink");
        }
        if fthr > gpt_v + 1e-9 {
            prop_assert!(d <= alloc, "over-served must not grow");
        }
    }

    /// GFMC splits capacity without exceeding it.
    #[test]
    fn gfmc_never_exceeds_capacity(cap in 0u64..1_000_000, n in 1usize..64) {
        prop_assert!(gfmc(cap, n) * n as u64 <= cap);
    }

    /// Page classification is total and consistent with Table 1's
    /// async/sync strategy split.
    #[test]
    fn classification_matches_strategy(
        reads in 0.0f64..1e6,
        writes in 0.0f64..1e6,
        tid in 0u8..0x7E,
        shared in any::<bool>(),
    ) {
        let owner = if shared {
            PageOwner::Shared
        } else {
            PageOwner::Private(LocalTid(tid))
        };
        let stats = PageStats { heat: reads + writes, reads, writes };
        let class = vulcan_core::classify_page(owner, &stats);
        let write_intensive =
            stats.write_intensive(vulcan_core::WRITE_INTENSIVE_RATIO);
        prop_assert_eq!(class.use_async(), !write_intensive);
        match (owner, class) {
            (PageOwner::Shared, PageClass::PrivateRead | PageClass::PrivateWrite) =>
                prop_assert!(false, "shared page classified private"),
            (PageOwner::Private(_), PageClass::SharedRead | PageClass::SharedWrite) =>
                prop_assert!(false, "private page classified shared"),
            _ => {}
        }
    }

    /// The classifier's verdict stabilizes for any constant duty signal.
    #[test]
    fn classifier_converges(duty in 0.0f64..=1.0) {
        let mut c = Classifier::new(1);
        for _ in 0..50 {
            c.observe(0, duty);
        }
        let settled = c.class(0);
        for _ in 0..10 {
            c.observe(0, duty);
            prop_assert_eq!(c.class(0), settled, "verdict flapped");
        }
        if duty < 0.3 {
            prop_assert_eq!(settled, ServiceClass::LatencyCritical);
        }
        if duty > 0.7 {
            prop_assert_eq!(settled, ServiceClass::BestEffort);
        }
    }
}
