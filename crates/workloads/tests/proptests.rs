//! Property-based tests for the workload generators.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vulcan_workloads::{
    AccessGen, KvConfig, KvStore, MicroConfig, Microbench, PageRank, PrConfig, Sweep, SweepConfig,
    Zipf,
};

fn drive<G: AccessGen>(
    g: &mut G,
    threads: usize,
    ops: usize,
    seed: u64,
) -> Vec<(usize, u64, bool)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut buf = Vec::new();
    for i in 0..ops {
        let tid = i % threads;
        buf.clear();
        g.next_op(tid, &mut rng, &mut buf);
        for a in &buf {
            out.push((tid, a.offset, a.write));
        }
    }
    out
}

proptest! {
    /// Every generator emits offsets strictly inside its RSS, for any
    /// thread and seed.
    #[test]
    fn generators_stay_in_bounds(seed in any::<u64>(), rss in 256u64..4_096) {
        let threads = 4;
        let mut kv = KvStore::new(KvConfig { rss_pages: rss, ..Default::default() });
        let mut pr = PageRank::new(PrConfig { rss_pages: rss, n_threads: threads, ..Default::default() });
        let mut sw = Sweep::new(SweepConfig { rss_pages: rss, n_threads: threads, ..Default::default() });
        for (label, accesses) in [
            ("kv", drive(&mut kv, threads, 200, seed)),
            ("pr", drive(&mut pr, threads, 200, seed)),
            ("sweep", drive(&mut sw, threads, 200, seed)),
        ] {
            prop_assert!(!accesses.is_empty());
            for (_, offset, _) in accesses {
                prop_assert!(offset < rss, "{label} escaped: {offset} >= {rss}");
            }
        }
    }

    /// The microbench stays inside its RSS even with drift wrapping.
    #[test]
    fn microbench_in_bounds_under_drift(
        seed in any::<u64>(),
        wss in 8u64..128,
        drift in 0u64..64,
    ) {
        let rss = 512;
        let mut mb = Microbench::new(MicroConfig {
            rss_pages: rss,
            wss_pages: wss,
            wss_drift: drift,
            ..Default::default()
        });
        for (_, offset, _) in drive(&mut mb, 2, 1_000, seed) {
            prop_assert!(offset < rss);
        }
    }

    /// Zipf sampling respects its support and its head really is heavier
    /// than its tail for s > 0.
    #[test]
    fn zipf_head_heavier(seed in any::<u64>(), n in 16u64..512, s in 0.3f64..1.5) {
        let z = Zipf::new(n, s);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut head = 0u64;
        let mut tail = 0u64;
        for _ in 0..2_000 {
            let k = z.sample(&mut rng);
            prop_assert!(k < n);
            if k < n / 4 {
                head += 1;
            } else if k >= 3 * n / 4 {
                tail += 1;
            }
        }
        prop_assert!(head > tail, "head {head} vs tail {tail}");
    }

    /// The indexed/branchless sampler is exactly `partition_point` over
    /// the normalized CDF — not approximately: both paths must pick the
    /// same rank for every draw, across skews that exercise the narrow
    /// (branchless window scan) and wide (binary search) paths.
    #[test]
    fn zipf_sample_equals_partition_point(
        seed in any::<u64>(),
        n in 1u64..2_000,
        s in 0.0f64..2.0,
    ) {
        // Rebuild the CDF exactly as `Zipf::new` does: identical
        // operations in identical order give bit-identical floats.
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        let z = Zipf::new(n, s);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            // Peek the next uniform draw with a cloned RNG so the
            // reference sees exactly the `u` that `sample` consumes.
            let u: f64 = rng.clone().gen();
            let want = cdf.partition_point(|&c| c < u) as u64;
            let got = z.sample(&mut rng);
            prop_assert_eq!(got, want, "u = {}, n = {}, s = {}", u, n, s);
        }
    }

    /// PageRank's write accesses are confined to the writer's own
    /// next-rank shard — the private-ownership property the biased
    /// migration policy depends on.
    #[test]
    fn pagerank_writes_are_private(seed in any::<u64>()) {
        let threads = 4;
        let mut pr = PageRank::new(PrConfig {
            rss_pages: 2_048,
            n_threads: threads,
            ..Default::default()
        });
        let mut writer: std::collections::HashMap<u64, usize> = Default::default();
        for (tid, offset, write) in drive(&mut pr, threads, 2_000, seed) {
            if write {
                if let Some(&prev) = writer.get(&offset) {
                    prop_assert_eq!(prev, tid, "page written by two threads");
                } else {
                    writer.insert(offset, tid);
                }
            }
        }
    }

    /// KV ops have a fixed shape: index reads followed by value accesses
    /// of one value (uniform write flag).
    #[test]
    fn kv_op_shape(seed in any::<u64>()) {
        let cfg = KvConfig::default();
        let (ia, va) = (cfg.index_accesses, cfg.value_accesses);
        let mut kv = KvStore::new(cfg);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut buf = Vec::new();
        for _ in 0..50 {
            buf.clear();
            kv.next_op(0, &mut rng, &mut buf);
            prop_assert_eq!(buf.len(), ia + va);
            for a in &buf[..ia] {
                prop_assert!(!a.write, "index walks never write");
            }
            let flags: std::collections::BTreeSet<bool> =
                buf[ia..].iter().map(|a| a.write).collect();
            prop_assert_eq!(flags.len(), 1, "one op hits one value one way");
        }
    }
}
