//! The access-generator abstraction.
//!
//! Workloads produce *operations* — short sequences of page accesses plus
//! a fixed off-memory cost (network, compute). The runtime replays these
//! against the simulated machine. Latency-critical performance is per-op
//! latency; best-effort performance is op throughput.

use rand::rngs::SmallRng;
use vulcan_sim::Nanos;

/// One page access within an operation. `offset` is relative to the
/// workload's region base; the runtime adds the base VPN.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageAccess {
    /// Page offset within the workload's RSS region.
    pub offset: u64,
    /// Whether the access writes.
    pub write: bool,
}

impl PageAccess {
    /// A read of `offset`.
    pub fn read(offset: u64) -> Self {
        PageAccess {
            offset,
            write: false,
        }
    }

    /// A write of `offset`.
    pub fn write(offset: u64) -> Self {
        PageAccess {
            offset,
            write: true,
        }
    }
}

/// A quantum-sized batch of generated accesses for one thread, laid out
/// as flat struct-of-arrays planes: page offsets and write flags live in
/// parallel vectors, with per-op end indices so the runtime can account
/// op latencies and the quantum budget exactly as the scalar loop does.
///
/// The planes are *generation output only* — the runtime sweeps them in
/// stages (TLB probe, walk/fault, tier latency, heat record) without the
/// generator ever observing simulation state, which is what makes batch
/// generation equivalent to interleaved `next_op` calls.
#[derive(Clone, Debug, Default)]
pub struct AccessPlan {
    /// Page-offset plane, one entry per access, ops back to back.
    pub offsets: Vec<u64>,
    /// Write-flag plane, parallel to `offsets`.
    pub writes: Vec<bool>,
    /// Exclusive end index of each op within the planes.
    pub op_ends: Vec<u32>,
}

impl AccessPlan {
    /// Drop all ops, keeping the allocations.
    pub fn clear(&mut self) {
        self.offsets.clear();
        self.writes.clear();
        self.op_ends.clear();
    }

    /// Record one access of the op currently being generated.
    #[inline]
    pub fn push_access(&mut self, offset: u64, write: bool) {
        self.offsets.push(offset);
        self.writes.push(write);
    }

    /// Close the op currently being generated.
    #[inline]
    pub fn end_op(&mut self) {
        self.op_ends
            .push(u32::try_from(self.offsets.len()).expect("batch exceeds u32 accesses"));
    }

    /// Number of complete ops in the plan.
    pub fn ops(&self) -> usize {
        self.op_ends.len()
    }

    /// Total accesses across all ops.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the plan holds no accesses.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// The `[start, end)` access-index range of op `i`.
    #[inline]
    pub fn op_range(&self, i: usize) -> (usize, usize) {
        let end = self.op_ends[i] as usize;
        let start = if i == 0 {
            0
        } else {
            self.op_ends[i - 1] as usize
        };
        (start, end)
    }
}

/// A workload's access generator.
pub trait AccessGen: Send {
    /// Append the accesses of thread `tid`'s next operation to `out`
    /// (which the caller clears).
    fn next_op(&mut self, tid: usize, rng: &mut SmallRng, out: &mut Vec<PageAccess>);

    /// The workload's resident set size in pages.
    fn rss_pages(&self) -> u64;

    /// Off-memory time per operation (request parsing, compute, network).
    /// This is what separates a latency-critical service issuing sparse
    /// accesses from a best-effort sweep saturating the memory system.
    fn fixed_op_nanos(&self) -> Nanos;

    /// Whether this generator supports batched plan generation
    /// ([`fill_batch`](Self::fill_batch) / [`rollback_ops`](Self::rollback_ops)).
    /// Generators that return `false` are driven through the scalar
    /// per-op loop.
    fn batchable(&self) -> bool {
        false
    }

    /// Append `max_ops` further operations for thread `tid` to `plan`,
    /// returning how many were generated. Must consume generator state
    /// and the RNG exactly as the same number of `next_op` calls would,
    /// so a batched and a scalar run stay in lockstep.
    fn fill_batch(
        &mut self,
        _tid: usize,
        _rng: &mut SmallRng,
        _plan: &mut AccessPlan,
        _max_ops: usize,
    ) -> usize {
        debug_assert!(!self.batchable(), "batchable generators must fill batches");
        0
    }

    /// Rewind this generator's own state by `n` operations for thread
    /// `tid`, undoing the tail of a [`fill_batch`](Self::fill_batch) the
    /// runtime could not consume (quantum budget exhausted mid-batch).
    /// RNG state is the caller's to snapshot and restore.
    fn rollback_ops(&mut self, _tid: usize, _n: usize) {
        debug_assert!(!self.batchable(), "batchable generators must roll back");
    }

    /// Serialize the generator's *mutable* state — cursors, phase
    /// counters, op counts — for checkpointing. Configuration is not
    /// included: a restore rebuilds the generator from its
    /// [`WorkloadSpec`](crate::WorkloadSpec) and then replays this state
    /// into it. Stateless generators return an empty object.
    fn snapshot_state(&self) -> vulcan_json::Value {
        vulcan_json::snap::obj(vec![])
    }

    /// Restore state captured by [`snapshot_state`](Self::snapshot_state)
    /// into a freshly built generator of the same configuration.
    fn restore_state(&mut self, _v: &vulcan_json::Value) -> Result<(), String> {
        Ok(())
    }
}

/// Split a region of `len` pages into `n` contiguous per-thread shards;
/// returns thread `tid`'s `[start, end)` offsets relative to the region.
pub fn shard(len: u64, n: usize, tid: usize) -> (u64, u64) {
    debug_assert!(tid < n);
    let n = n as u64;
    let tid = tid as u64;
    let base = len / n;
    let rem = len % n;
    let start = tid * base + tid.min(rem);
    let extra = if tid < rem { 1 } else { 0 };
    (start, start + base + extra)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_partition_the_region() {
        for len in [1u64, 7, 100, 1000] {
            for n in [1usize, 3, 8] {
                let mut covered = 0;
                let mut prev_end = 0;
                for tid in 0..n {
                    let (s, e) = shard(len, n, tid);
                    assert_eq!(s, prev_end, "shards are contiguous");
                    assert!(e >= s);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, len, "len={len} n={n}");
                assert_eq!(prev_end, len);
            }
        }
    }

    #[test]
    fn shards_are_balanced() {
        for tid in 0..8 {
            let (s, e) = shard(100, 8, tid);
            assert!((e - s) == 12 || (e - s) == 13);
        }
    }

    #[test]
    fn access_constructors() {
        assert!(!PageAccess::read(5).write);
        assert!(PageAccess::write(5).write);
        assert_eq!(PageAccess::read(5).offset, 5);
    }
}
