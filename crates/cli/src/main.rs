//! `vulcan-sim` — run tiered-memory experiments from a JSON config.

use vulcan::prelude::{PolicyKind, Telemetry};
use vulcan_cli::{report, ExperimentConfig};

const USAGE: &str = "\
vulcan-sim — tiered-memory simulation runner (Vulcan reproduction)

USAGE:
    vulcan-sim run [OPTIONS] <config.json>   run the config's policy
    vulcan-sim compare <config.json>         run tpp, memtis, nomad and vulcan
    vulcan-sim churn [OPTIONS]               open-loop tenancy churn run:
                                             Poisson arrivals, Pareto
                                             lifetimes, admission control
    vulcan-sim checkpoint <config.json> --at <q> --out <ck.json>
                                             run q quanta, then serialize the
                                             complete simulation state
    vulcan-sim resume <ck.json> [OPTIONS]    restore a checkpoint and run the
                                             remaining quanta; the results are
                                             byte-identical to the straight run
    vulcan-sim example                       print an example config
    vulcan-sim help                          this text

OPTIONS (run):
    --trace <out.jsonl>   write the structured event trace as JSON lines
    --metrics             print the telemetry summary after the run
    --shards <n>          shard the quantum sweep across n worker threads
                          within the cell (default 1 = sequential; results
                          are byte-identical for any n). Conflicts with
                          --trace/--metrics: telemetry forces the
                          sequential path, so combining them is an error.

OPTIONS (churn):
    --rate <r>            arrivals per simulated second (default 2.0;
                          0 degenerates to a static anchor-only run)
    --duration <ns>       simulated nanoseconds to run, rounded up to
                          whole 1-second quanta (default 60000000000)
    --seed <s>            RNG seed for arrivals/lifetimes/templates
                          (default 42; same seed, same run, bit for bit)
    --policy <name>       tiering policy (default vulcan)
    --trace <out.jsonl>   write the structured event trace as JSON lines
    --shards <n>          shard the quantum sweep within the cell
                          (default 1; conflicts with --trace)
    --out <report.json>   write the deterministic churn report artifact
    --checkpoint-at <q>   serialize the engine after quantum q (the run
                          still continues to completion)
    --checkpoint-out <p>  where to write the mid-churn checkpoint
                          (required with --checkpoint-at)

OPTIONS (resume):
    --out <report.json>   churn checkpoints: write the churn report
                          artifact (sha256-comparable with the straight
                          run's --out)
    --series-out <p>      static checkpoints: write the series JSON
                          (sha256-comparable with the straight run's
                          series_out)
";

/// Parse a `--shards` value: a positive integer, 0 and garbage rejected
/// at config load (exit 2) rather than at run time.
fn parse_shards_value(v: &str) -> Result<usize, CliError> {
    v.parse::<usize>()
        .ok()
        .filter(|n| *n >= 1)
        .ok_or_else(|| CliError::Usage("--shards needs an integer >= 1".into()))
}

/// A usage or configuration error (exit status 2), as opposed to a
/// runtime failure such as an unwritable output file (exit status 1).
enum CliError {
    Usage(String),
    Runtime(String),
}

impl CliError {
    fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Runtime(_) => 1,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) => m,
        }
    }
}

fn load(path: &str) -> Result<ExperimentConfig, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Usage(format!("cannot read {path}: {e}")))?;
    ExperimentConfig::from_json(&text).map_err(CliError::Usage)
}

fn dump_series(cfg: &ExperimentConfig, res: &vulcan::prelude::RunResult) -> Result<(), CliError> {
    if let Some(path) = &cfg.series_out {
        std::fs::write(path, res.series.to_json())
            .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
        println!("[series written to {path}]");
    }
    Ok(())
}

struct RunArgs {
    config: String,
    trace: Option<String>,
    metrics: bool,
    shards: Option<usize>,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, CliError> {
    let mut config = None;
    let mut trace = None;
    let mut metrics = false;
    let mut shards = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => {
                trace = Some(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--trace needs an output path".into()))?
                        .clone(),
                );
            }
            "--metrics" => metrics = true,
            "--shards" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--shards needs a value".into()))?;
                shards = Some(parse_shards_value(v)?);
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown option '{flag}'")));
            }
            path if config.is_none() => config = Some(path.to_string()),
            extra => {
                return Err(CliError::Usage(format!("unexpected argument '{extra}'")));
            }
        }
    }
    Ok(RunArgs {
        config: config.ok_or_else(|| CliError::Usage("run needs a config path".into()))?,
        trace,
        metrics,
        shards,
    })
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let run = parse_run_args(args)?;
    let mut cfg = load(&run.config)?;
    if let Some(n) = run.shards {
        cfg.shards = n;
    }
    if cfg.shards > 1 && (run.trace.is_some() || run.metrics) {
        return Err(CliError::Usage(
            "--shards > 1 conflicts with --trace/--metrics: telemetry \
             forces the sequential sweep, so the flag would be silently \
             ignored; drop one of them"
                .into(),
        ));
    }
    let telemetry = if run.trace.is_some() || run.metrics {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let res = cfg
        .run_with_telemetry(None, telemetry.clone())
        .map_err(CliError::Usage)?;
    print!("{}", report(&res));
    if let Some(path) = &run.trace {
        std::fs::write(path, telemetry.events_jsonl())
            .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
        println!("[trace written to {path}]");
    }
    if run.metrics {
        println!();
        print!("{}", telemetry.summary());
    }
    dump_series(&cfg, &res)
}

struct ChurnArgs {
    rate: f64,
    duration_ns: u64,
    seed: u64,
    policy: PolicyKind,
    trace: Option<String>,
    shards: usize,
    out: Option<String>,
    checkpoint_at: Option<u64>,
    checkpoint_out: Option<String>,
}

fn parse_churn_args(args: &[String]) -> Result<ChurnArgs, CliError> {
    let mut parsed = ChurnArgs {
        rate: 2.0,
        duration_ns: 60_000_000_000,
        seed: 42,
        policy: PolicyKind::Vulcan,
        trace: None,
        shards: 1,
        out: None,
        checkpoint_at: None,
        checkpoint_out: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--rate" => {
                parsed.rate = value("--rate")?
                    .parse::<f64>()
                    .ok()
                    .filter(|r| r.is_finite() && *r >= 0.0)
                    .ok_or_else(|| {
                        CliError::Usage("--rate needs a finite non-negative number".into())
                    })?;
            }
            "--duration" => {
                parsed.duration_ns = value("--duration")?
                    .parse::<u64>()
                    .ok()
                    .filter(|d| *d > 0)
                    .ok_or_else(|| {
                        CliError::Usage("--duration needs a positive nanosecond count".into())
                    })?;
            }
            "--seed" => {
                parsed.seed = value("--seed")?
                    .parse::<u64>()
                    .map_err(|_| CliError::Usage("--seed needs an unsigned integer".into()))?;
            }
            "--policy" => {
                parsed.policy = value("--policy")?
                    .parse::<PolicyKind>()
                    .map_err(|e| CliError::Usage(e.to_string()))?;
            }
            "--trace" => parsed.trace = Some(value("--trace")?),
            "--shards" => parsed.shards = parse_shards_value(&value("--shards")?)?,
            "--out" => parsed.out = Some(value("--out")?),
            "--checkpoint-at" => {
                parsed.checkpoint_at =
                    Some(value("--checkpoint-at")?.parse::<u64>().map_err(|_| {
                        CliError::Usage("--checkpoint-at needs a quantum index".into())
                    })?);
            }
            "--checkpoint-out" => parsed.checkpoint_out = Some(value("--checkpoint-out")?),
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown option '{flag}'")));
            }
            extra => {
                return Err(CliError::Usage(format!("unexpected argument '{extra}'")));
            }
        }
    }
    if parsed.shards > 1 && parsed.trace.is_some() {
        return Err(CliError::Usage(
            "--shards > 1 conflicts with --trace: telemetry forces the \
             sequential sweep, so the flag would be silently ignored; \
             drop one of them"
                .into(),
        ));
    }
    if parsed.checkpoint_at.is_some() != parsed.checkpoint_out.is_some() {
        return Err(CliError::Usage(
            "--checkpoint-at and --checkpoint-out go together: one says \
             when to serialize the engine, the other where to write it"
                .into(),
        ));
    }
    if let Some(at) = parsed.checkpoint_at {
        let n_quanta = parsed.duration_ns.div_ceil(1_000_000_000);
        if at >= n_quanta {
            return Err(CliError::Usage(format!(
                "--checkpoint-at {at} is past the run: the configured \
                 duration spans {n_quanta} quanta"
            )));
        }
    }
    Ok(parsed)
}

/// The churn anchors: one latency-critical and one best-effort tenant
/// that never depart, so every window has live residents to be fair to
/// while the open-loop tenants arrive and leave around them.
fn churn_anchors() -> Vec<vulcan::prelude::WorkloadSpec> {
    use vulcan::prelude::*;
    let mut lc = microbench(
        "anchor-lc",
        MicroConfig {
            rss_pages: 512,
            wss_pages: 128,
            read_ratio: 0.9,
            ..Default::default()
        },
        2,
    )
    .preallocated(TierKind::Slow);
    lc.class = WorkloadClass::LatencyCritical;
    let be = microbench(
        "anchor-be",
        MicroConfig {
            rss_pages: 512,
            wss_pages: 256,
            ..Default::default()
        },
        2,
    )
    .preallocated(TierKind::Slow);
    vec![lc, be]
}

/// Print the churn tallies and audit frame conservation — shared by the
/// straight `churn` run and a `resume` of a mid-churn checkpoint, so
/// both render identically.
fn print_churn_report(rep: &vulcan_churn::ChurnReport) -> Result<(), CliError> {
    let s = &rep.stats;
    println!(
        "  arrivals={} admitted={} (+{} from queue) queued={} rejected={} timed_out={}",
        s.arrivals, s.admitted, s.admitted_from_queue, s.queued, s.rejected, s.timed_out
    );
    println!(
        "  departed={} retired_at_end={} peak_active={} compaction_rounds={} promoted={}",
        s.departed, s.retired_at_end, s.peak_active, s.compaction_rounds, s.compaction_promoted
    );
    println!(
        "  windowed_jain={} windowed_fthr={} p99_latency_ns={}",
        rep.mean_windowed_jain()
            .map(|v| format!("{v:.3}"))
            .unwrap_or_else(|| "-".into()),
        rep.mean_windowed_fthr()
            .map(|v| format!("{v:.3}"))
            .unwrap_or_else(|| "-".into()),
        rep.p99_latency_ns()
            .map(|v| format!("{v:.0}"))
            .unwrap_or_else(|| "-".into()),
    );
    if rep.leaked_total() != 0 {
        return Err(CliError::Runtime(format!(
            "frame-conservation violation: {:?} frames leaked per tier",
            rep.leaked_by_tier
        )));
    }
    println!(
        "  frames conserved: 0 on every tier after {} teardowns",
        s.retired()
    );
    Ok(())
}

/// Write the deterministic churn report artifact (`--out`).
fn dump_churn_report(rep: &vulcan_churn::ChurnReport, path: &str) -> Result<(), CliError> {
    std::fs::write(path, rep.to_value().to_json())
        .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
    println!("[report written to {path}]");
    Ok(())
}

fn cmd_churn(args: &[String]) -> Result<(), CliError> {
    use vulcan::prelude::*;
    let a = parse_churn_args(args)?;
    let telemetry = if a.trace.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let n_quanta = a.duration_ns.div_ceil(1_000_000_000);
    let kind = a.policy;
    let runner = SimRunner::builder()
        .machine(MachineSpec::small(2_048, 32_768, 8))
        .workloads(churn_anchors())
        .profiler_factory(move |_| kind.profiler())
        .policy(kind.make())
        .config(SimConfig {
            n_quanta: 0, // the engine owns stepping
            seed: a.seed,
            quantum_active: Nanos::millis(1),
            telemetry: telemetry.clone(),
            shards: a.shards,
            ..Default::default()
        })
        .build();
    let cfg = vulcan_churn::ChurnConfig {
        arrival_rate_per_sec: a.rate,
        n_quanta,
        ..vulcan_churn::ChurnConfig::default()
    };
    let mut engine =
        vulcan_churn::ChurnEngine::new(runner, a.seed, cfg, vulcan_churn::Catalog::default_mix());
    if let (Some(at), Some(out)) = (a.checkpoint_at, &a.checkpoint_out) {
        for _ in 0..at {
            engine.step();
        }
        let ck = engine
            .checkpoint()
            .map_err(|e| CliError::Runtime(format!("cannot checkpoint: {e}")))?;
        std::fs::write(out, ck.to_json())
            .map_err(|e| CliError::Runtime(format!("cannot write {out}: {e}")))?;
        println!("[checkpoint at quantum {at} written to {out}]");
    }
    let rep = engine.run_remaining();

    println!(
        "churn: policy={} rate={}/s duration={}s seed={}",
        rep.run.policy, a.rate, n_quanta, a.seed
    );
    print_churn_report(&rep)?;
    if let Some(path) = &a.out {
        dump_churn_report(&rep, path)?;
    }
    if let Some(path) = &a.trace {
        std::fs::write(path, telemetry.events_jsonl())
            .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
        println!("[trace written to {path}]");
    }
    Ok(())
}

fn parse_checkpoint_args(args: &[String]) -> Result<(String, u64, String), CliError> {
    let mut config = None;
    let mut at = None;
    let mut out = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--at" => {
                at = Some(
                    value("--at")?
                        .parse::<u64>()
                        .map_err(|_| CliError::Usage("--at needs a quantum index".into()))?,
                );
            }
            "--out" => out = Some(value("--out")?),
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown option '{flag}'")));
            }
            path if config.is_none() => config = Some(path.to_string()),
            extra => {
                return Err(CliError::Usage(format!("unexpected argument '{extra}'")));
            }
        }
    }
    Ok((
        config.ok_or_else(|| CliError::Usage("checkpoint needs a config path".into()))?,
        at.ok_or_else(|| CliError::Usage("checkpoint needs --at <quantum>".into()))?,
        out.ok_or_else(|| CliError::Usage("checkpoint needs --out <path>".into()))?,
    ))
}

fn cmd_checkpoint(args: &[String]) -> Result<(), CliError> {
    let (config, at, out) = parse_checkpoint_args(args)?;
    let cfg = load(&config)?;
    if at >= cfg.seconds {
        return Err(CliError::Usage(format!(
            "--at {at} is past the run: the config spans {} quanta",
            cfg.seconds
        )));
    }
    let mut runner = cfg
        .build_runner(None, Telemetry::disabled())
        .map_err(CliError::Usage)?;
    for _ in 0..at {
        runner.run_quantum();
    }
    let ck = runner
        .checkpoint()
        .map_err(|e| CliError::Runtime(format!("cannot checkpoint: {e}")))?;
    std::fs::write(&out, ck.to_json())
        .map_err(|e| CliError::Runtime(format!("cannot write {out}: {e}")))?;
    println!(
        "[checkpoint of {config} at quantum {at}/{} written to {out}]",
        cfg.seconds
    );
    Ok(())
}

fn parse_resume_args(
    args: &[String],
) -> Result<(String, Option<String>, Option<String>), CliError> {
    let mut path = None;
    let mut out = None;
    let mut series_out = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--out" => out = Some(value("--out")?),
            "--series-out" => series_out = Some(value("--series-out")?),
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown option '{flag}'")));
            }
            p if path.is_none() => path = Some(p.to_string()),
            extra => {
                return Err(CliError::Usage(format!("unexpected argument '{extra}'")));
            }
        }
    }
    Ok((
        path.ok_or_else(|| CliError::Usage("resume needs a checkpoint path".into()))?,
        out,
        series_out,
    ))
}

fn cmd_resume(args: &[String]) -> Result<(), CliError> {
    use vulcan::prelude::*;
    use vulcan::runtime::checkpoint as ck;
    let (path, out, series_out) = parse_resume_args(args)?;
    let text = std::fs::read_to_string(&path)
        .map_err(|e| CliError::Usage(format!("cannot read {path}: {e}")))?;
    // Every CheckpointError — truncation, foreign format, version skew,
    // inconsistent fields — is an input problem: exit 2, never a panic.
    let v = ck::parse_checkpoint(&text).map_err(|e| CliError::Usage(e.to_string()))?;
    let name = ck::policy_name(&v).map_err(|e| CliError::Usage(e.to_string()))?;
    let kind = name
        .parse::<PolicyKind>()
        .map_err(|e| CliError::Usage(format!("checkpoint policy: {e}")))?;
    let at = ck::quantum_index(&v).map_err(|e| CliError::Usage(e.to_string()))?;
    if v.get("churn").is_some() {
        if series_out.is_some() {
            return Err(CliError::Usage(
                "--series-out is for static checkpoints; a churn resume \
                 writes its artifact with --out"
                    .into(),
            ));
        }
        let engine = vulcan_churn::ChurnEngine::restore(
            &v,
            kind.make(),
            move |_| kind.profiler(),
            vulcan_churn::Catalog::default_mix(),
        )
        .map_err(|e| CliError::Usage(e.to_string()))?;
        let rep = engine.run_remaining();
        println!("churn (resumed at quantum {at}): policy={}", rep.run.policy);
        print_churn_report(&rep)?;
        if let Some(path) = &out {
            dump_churn_report(&rep, path)?;
        }
    } else {
        if out.is_some() {
            return Err(CliError::Usage(
                "--out is the churn artifact; a static resume writes its \
                 series with --series-out"
                    .into(),
            ));
        }
        let runner = SimRunner::restore(&v, kind.make(), move |_| kind.profiler())
            .map_err(|e| CliError::Usage(e.to_string()))?;
        let res = runner.run_remaining();
        println!("[resumed at quantum {at}]");
        print!("{}", report(&res));
        if let Some(path) = &series_out {
            std::fs::write(path, res.series.to_json())
                .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
            println!("[series written to {path}]");
        }
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), CliError> {
    let path = args
        .first()
        .ok_or_else(|| CliError::Usage("compare needs a config path".into()))?;
    let cfg = load(path)?;
    for policy in PolicyKind::PAPER {
        let res = cfg.run(Some(policy)).map_err(CliError::Usage)?;
        print!("{}", report(&res));
        println!();
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("churn") => cmd_churn(&args[1..]),
        Some("checkpoint") => cmd_checkpoint(&args[1..]),
        Some("resume") => cmd_resume(&args[1..]),
        Some("example") => {
            println!("{}", ExperimentConfig::example());
            Ok(())
        }
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            Ok(())
        }
        None => Err(CliError::Usage("missing subcommand".into())),
        Some(other) => Err(CliError::Usage(format!("unknown subcommand '{other}'"))),
    };
    if let Err(e) = result {
        eprintln!("error: {}", e.message());
        if matches!(e, CliError::Usage(_)) {
            eprint!("\n{USAGE}");
        }
        std::process::exit(e.exit_code());
    }
}
