//! # Vulcan — fair and efficient tiered memory management
//!
//! A full-system reproduction of *"Leave No One Behind: Towards Fair and
//! Efficient Tiered Memory Management for Multi-Applications"* (Tang,
//! Wang, Wang, Wu — ICPP 2025) as a user-space simulation stack.
//!
//! The facade re-exports every layer:
//!
//! * [`sim`] — the tiered-memory machine (tiers, bandwidth, cost model);
//! * [`vm`] — page tables with per-thread replication, TLBs, shootdowns;
//! * [`migrate`] — the five-phase mechanism, sync/async engines, shadows;
//! * [`profile`] — PEBS / table-scan / hint-fault / hybrid profilers;
//! * [`workloads`] — Memcached / PageRank / Liblinear-like generators;
//! * [`runtime`] — the simulation driver and the `TieringPolicy` trait;
//! * [`policy`] — the TPP / MEMTIS / NOMAD baselines;
//! * [`core`] — Vulcan itself: QoS model, CBFRP, classifier, biased
//!   migration queues;
//! * [`metrics`] — Jain/CFI fairness, statistics, reporting;
//! * [`telemetry`] — counters, phase spans and the deterministic
//!   structured event trace (off by default, zero-cost when disabled).
//!
//! ## Quickstart
//!
//! ```
//! use vulcan::prelude::*;
//!
//! // Co-locate a latency-critical KV store with a best-effort sweep on
//! // the paper's (scaled) testbed, managed by Vulcan.
//! let result = SimRunner::builder()
//!     .machine(MachineSpec::paper_testbed())
//!     .workloads(vec![memcached(), liblinear()])
//!     .policy(PolicyKind::Vulcan.make())
//!     .config(SimConfig {
//!         n_quanta: 10,
//!         quantum_active: Nanos::micros(200),
//!         ..Default::default()
//!     })
//!     .build()
//!     .run();
//! assert!(result.cfi > 0.0 && result.cfi <= 1.0);
//! ```

pub mod registry;

pub use vulcan_core as core;
pub use vulcan_metrics as metrics;
pub use vulcan_migrate as migrate;
pub use vulcan_policy as policy;
pub use vulcan_profile as profile;
pub use vulcan_runtime as runtime;
pub use vulcan_sim as sim;
pub use vulcan_telemetry as telemetry;
pub use vulcan_vm as vm;
pub use vulcan_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::registry::{make_policy, PolicyKind, UnknownPolicy};
    pub use vulcan_core::{Cbfrp, Classifier, PageClass, ServiceClass, VulcanConfig, VulcanPolicy};
    pub use vulcan_metrics::{jain_index, CfiAccumulator, Table};
    pub use vulcan_migrate::{AsyncMigrator, MechanismConfig, PrepStrategy, ShadowRegistry};
    pub use vulcan_policy::{profiler_for, Memtis, Mtm, Nomad, Tpp};
    pub use vulcan_profile::{
        AnyProfiler, HintFaultProfiler, HybridProfiler, PebsProfiler, Profiler, PtScanProfiler,
    };
    pub use vulcan_runtime::{
        RunResult, SimConfig, SimRunner, SimRunnerBuilder, StaticPlacement, TieringPolicy,
        UniformPartition,
    };
    pub use vulcan_sim::{Cycles, MachineSpec, Nanos, TierKind};
    pub use vulcan_telemetry::{EventKind, Telemetry};
    pub use vulcan_vm::{PageOwner, ShootdownScope, Vpn};
    pub use vulcan_workloads::{
        bufferpool, liblinear, memcached, microbench, pagerank, replay, BufferPoolConfig,
        MicroConfig, Trace, TraceReplayer, WorkloadClass, WorkloadSpec, WssScenario,
    };
}
